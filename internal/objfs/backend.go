package objfs

import (
	"path"
	"sort"
	"strings"
	"time"

	"plfs/internal/extent"
	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/plfs"
	"plfs/internal/sim"
)

// Backend implements plfs.Backend over one Store.  The path→key mapping
// is the identity: a file is the object at its path, a directory is the
// zero-byte marker object at `path/` plus whatever keys share the
// prefix, and every Backend method translates to PUT/GET/HEAD/LIST/
// DELETE requests with their costs.
//
// A Backend is bound to one simulated process (the *sim.Proc costs are
// charged to); build one per rank via Ctx or Vols.  Over an engineless
// store the proc is nil, operations are free, and the Backend advertises
// plfs.ConcurrentIO — handles tolerate the reader's goroutine fan-out.
type Backend struct {
	s *Store
	p *sim.Proc
}

var (
	_ plfs.Backend    = Backend{}
	_ plfs.CondPutter = Backend{}
)

// Vol returns an engineless Backend over s (unit tests, conformance
// suite).  For sim-bound stores use Ctx/Vols, which bind the calling
// process.
func Vol(s *Store) Backend { return Backend{s: s} }

// Vols builds the per-volume backend set a plfs.Ctx wants: volumes
// slots, all reaching the same flat store, each charging costs to p.
func Vols(s *Store, p *sim.Proc, volumes int) []plfs.Backend {
	out := make([]plfs.Backend, volumes)
	for i := range out {
		out[i] = Backend{s: s, p: p}
	}
	return out
}

// Ctx assembles a complete plfs.Ctx for a simulated process (the objfs
// analogue of simfs.Ctx).
func Ctx(s *Store, volumes, node int, p *sim.Proc, rank, procsPerNode int) plfs.Ctx {
	return plfs.Ctx{
		Vols:       Vols(s, p, volumes),
		Rank:       rank,
		Host:       node,
		HostLeader: rank%procsPerNode == 0,
		Clock:      plfs.ClockFunc(func() int64 { return int64(p.Now()) }),
		Sleep:      procSleeper{p},
	}
}

// FaultCtx is Ctx with every volume routed through the fault injector
// (nil yields a plain Ctx).  The injector's volume index keys latency
// and brownout schedules exactly as over simfs, even though every slot
// reaches the same flat store.
func FaultCtx(s *Store, volumes, node int, p *sim.Proc, rank, procsPerNode int, inj *fault.Injector) plfs.Ctx {
	ctx := Ctx(s, volumes, node, p, rank, procsPerNode)
	if inj != nil {
		ctx.Vols = inj.WrapVols(ctx.Vols, ctx.Sleep)
	}
	return ctx
}

type procSleeper struct{ p *sim.Proc }

func (s procSleeper) Sleep(d time.Duration) { s.p.Sleep(d) }

// ConcurrentIO reports whether handles tolerate concurrent goroutine
// use: true for an engineless store, false under the discrete-event
// engine (blocking calls must stay on the process's own goroutine).
func (b Backend) ConcurrentIO() bool { return b.s.eng == nil }

// existsLocked reports whether path is taken, as a file or a prefix.
func (b Backend) existsLocked(path string) bool {
	if _, ok := b.s.objs[path]; ok {
		return true
	}
	_, ok := b.s.objs[markerKey(path)]
	return ok
}

// Mkdir implements plfs.Backend: a conditional put-if-absent of the
// prefix marker object.  There is no parent to lock — or to require:
// creating "a/b/c" never touches "a/b".
func (b Backend) Mkdir(path string) error {
	b.s.service(b.p, b.s.cfg.PutOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Puts++
	b.s.stats.CondPuts++
	if b.existsLocked(path) {
		b.s.stats.Conflicts++
		return ErrExist
	}
	b.s.insertLocked(markerKey(path))
	return nil
}

// Create implements plfs.Backend: a conditional put-if-absent of an
// empty object — exclusive, as the container protocol's reliance on
// EEXIST requires.
func (b Backend) Create(path string) (plfs.File, error) {
	b.s.service(b.p, b.s.cfg.PutOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Puts++
	b.s.stats.CondPuts++
	if b.existsLocked(path) {
		b.s.stats.Conflicts++
		return nil, ErrExist
	}
	o := b.s.insertLocked(path)
	return &file{s: b.s, p: b.p, o: o}, nil
}

// open resolves path to its object with one HEAD.
func (b Backend) open(path string) (*file, error) {
	b.s.service(b.p, b.s.cfg.HeadOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Heads++
	o, ok := b.s.objs[path]
	if !ok {
		if _, dir := b.s.objs[markerKey(path)]; dir {
			return nil, ErrIsDir
		}
		return nil, ErrNotExist
	}
	return &file{s: b.s, p: b.p, o: o}, nil
}

// OpenRead implements plfs.Backend.
func (b Backend) OpenRead(path string) (plfs.File, error) {
	f, err := b.open(path)
	if err != nil {
		return nil, err
	}
	f.ro = true
	return f, nil
}

// OpenWrite implements plfs.Backend: parts may be added to an existing
// object without truncation.
func (b Backend) OpenWrite(path string) (plfs.File, error) { return b.open(path) }

// Stat implements plfs.Backend: one HEAD; a path whose marker (or any
// deeper key) exists reports as a directory.
func (b Backend) Stat(p string) (plfs.Info, error) {
	b.s.service(b.p, b.s.cfg.HeadOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Heads++
	if o, ok := b.s.objs[p]; ok {
		return plfs.Info{Name: path.Base(p), Size: o.data.Size()}, nil
	}
	marker := markerKey(p)
	if _, ok := b.s.objs[marker]; ok {
		return plfs.Info{Name: path.Base(p), Dir: true}, nil
	}
	if len(b.s.scanLocked(marker)) > 0 {
		return plfs.Info{Name: path.Base(p), Dir: true}, nil
	}
	return plfs.Info{}, ErrNotExist
}

// ReadDir implements plfs.Backend as a bounded prefix scan: every key
// below `path/` is scanned in pages of Config.ListPage, and the
// one-level view is assembled client-side (deeper keys collapse into
// their first path segment, like a delimiter listing).  The cost is
// proportional to the object population under the prefix — a container
// with thousands of droppings pays for all of them on every listing,
// the flat namespace's price for its convoy-free creates.
func (b Backend) ReadDir(p string) ([]plfs.Info, error) {
	marker := markerKey(p)
	b.s.mu.Lock()
	_, hasMarker := b.s.objs[marker]
	keys := b.s.scanLocked(marker)
	b.s.mu.Unlock()
	if !hasMarker && len(keys) == 0 {
		b.s.service(b.p, b.s.cfg.ListOp)
		b.s.count(func(st *Stats) { st.Lists++ })
		return nil, ErrNotExist
	}
	pages := (len(keys) + b.s.cfg.ListPage - 1) / b.s.cfg.ListPage
	if pages < 1 {
		pages = 1
	}
	for i := 0; i < pages; i++ {
		n := b.s.cfg.ListPage
		if rest := len(keys) - i*b.s.cfg.ListPage; rest < n {
			n = rest
		}
		b.s.listPage(b.p, time.Duration(n)*b.s.cfg.ListKey)
	}
	b.s.count(func(st *Stats) {
		st.Lists += int64(pages)
		st.ListKeys += int64(len(keys))
	})

	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	var out []plfs.Info
	seen := map[string]bool{}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, marker)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			name := rest[:i]
			if !seen[name] {
				seen[name] = true
				out = append(out, plfs.Info{Name: name, Dir: true})
			}
			continue
		}
		if o, ok := b.s.objs[k]; ok {
			out = append(out, plfs.Info{Name: rest, Size: o.data.Size()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove implements plfs.Backend: one DELETE.  Removing a prefix marker
// with keys still below it fails with ErrNotEmpty, mirroring rmdir.
func (b Backend) Remove(path string) error {
	b.s.service(b.p, b.s.cfg.DeleteOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Deletes++
	if _, ok := b.s.objs[path]; ok {
		b.s.deleteLocked(path)
		return nil
	}
	marker := markerKey(path)
	if _, ok := b.s.objs[marker]; ok {
		if len(b.s.scanLocked(marker)) > 0 {
			return ErrNotEmpty
		}
		b.s.deleteLocked(marker)
		return nil
	}
	return ErrNotExist
}

// Rename implements plfs.Backend.  Object stores have no rename: a file
// becomes copy + delete (two requests plus the byte movement), and a
// prefix becomes one copy + delete per key below it — the expensive
// directory-rename story the capability matrix warns about.  A taken
// target fails with ErrExist and leaves the source untouched, the same
// no-replace verdict the simulated POSIX volume gives; the commit
// protocol never renames over an existing name without removing it
// first, and over objfs it does not rename at all (conditional PUT).
func (b Backend) Rename(oldPath, newPath string) error {
	b.s.service(b.p, b.s.cfg.HeadOp)
	b.s.mu.Lock()
	b.s.stats.Heads++
	if b.existsLocked(newPath) {
		b.s.mu.Unlock()
		return ErrExist
	}
	if _, ok := b.s.objs[oldPath]; ok {
		b.s.mu.Unlock()
		return b.renameKey(oldPath, newPath)
	}
	oldMarker := markerKey(oldPath)
	if _, ok := b.s.objs[oldMarker]; !ok {
		b.s.mu.Unlock()
		return ErrNotExist
	}
	keys := append([]string{oldMarker}, b.s.scanLocked(oldMarker)...)
	b.s.mu.Unlock()
	newMarker := markerKey(newPath)
	for _, k := range keys {
		if err := b.renameKey(k, newMarker+strings.TrimPrefix(k, oldMarker)); err != nil {
			return err
		}
	}
	return nil
}

// renameKey moves one key: a server-side copy (PUT) plus a DELETE.
func (b Backend) renameKey(oldKey, newKey string) error {
	b.s.mu.Lock()
	o, ok := b.s.objs[oldKey]
	size := int64(0)
	if ok {
		size = o.data.Size()
	}
	b.s.mu.Unlock()
	if !ok {
		return ErrNotExist
	}
	b.s.service(b.p, b.s.cfg.PutOp)
	b.s.transfer(b.p, size)
	b.s.service(b.p, b.s.cfg.DeleteOp)
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Puts++
	b.s.stats.Deletes++
	if cur, still := b.s.objs[oldKey]; !still || cur != o {
		return ErrNotExist // raced away while the copy was in flight
	}
	b.s.deleteLocked(oldKey)
	if _, taken := b.s.objs[newKey]; !taken {
		b.s.insertLocked(newKey)
	}
	moved := b.s.objs[newKey]
	moved.data = o.data
	moved.gen++
	return nil
}

// PutIfAbsent implements plfs.CondPutter: one atomic conditional PUT of
// the whole object.  A taken key fails with ErrExist; nothing is ever
// half-published — this is the primitive that replaces the POSIX
// create-temp/append/rename commit.
func (b Backend) PutIfAbsent(path string, data []byte) error {
	b.s.service(b.p, b.s.cfg.PutOp)
	b.s.transfer(b.p, int64(len(data)))
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Puts++
	b.s.stats.CondPuts++
	b.s.stats.BytesIn += int64(len(data))
	if b.existsLocked(path) {
		b.s.stats.Conflicts++
		return ErrExist
	}
	o := b.s.insertLocked(path)
	if len(data) > 0 {
		o.data.WriteAt(0, payload.FromBytes(append([]byte(nil), data...)))
	}
	return nil
}

// PutReplace implements plfs.CondPutter: a put-if-generation loop's
// single step.  It HEADs the key for its current generation, then PUTs
// conditioned on it; a writer that republished the key in between makes
// the PUT fail with a transient ConflictError, and the caller's retry
// re-reads and reissues.  Either the whole new object is visible or the
// old one still is.
func (b Backend) PutReplace(path string, data []byte) error {
	b.s.service(b.p, b.s.cfg.HeadOp)
	b.s.mu.Lock()
	b.s.stats.Heads++
	want := int64(genAbsent)
	if o, ok := b.s.objs[path]; ok {
		want = o.gen
	}
	b.s.mu.Unlock()

	b.s.service(b.p, b.s.cfg.PutOp)
	b.s.transfer(b.p, int64(len(data)))
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.stats.Puts++
	b.s.stats.CondPuts++
	b.s.stats.BytesIn += int64(len(data))
	have := int64(genAbsent)
	o := b.s.objs[path]
	if o != nil {
		have = o.gen
	}
	if have != want {
		b.s.stats.Conflicts++
		return &ConflictError{Key: path, Want: want, Have: have}
	}
	if o == nil {
		o = b.s.insertLocked(path)
	}
	o.data = payload.File{}
	if len(data) > 0 {
		o.data.WriteAt(0, payload.FromBytes(append([]byte(nil), data...)))
	}
	o.gen++
	return nil
}

// file is an open object handle.  Writes are part uploads (each costs a
// PUT plus the byte movement), reads are GETs; there are no range locks
// to take — the store never implements plfs.RangeLocker, which is
// precisely why direct N-1 RMW workloads must not assume sieving safety
// over it (see the capability matrix in README).
type file struct {
	s  *Store
	p  *sim.Proc
	o  *object
	ro bool
}

// WriteAt implements plfs.File as a part upload at an explicit offset.
func (f *file) WriteAt(off int64, p payload.Payload) error {
	f.s.service(f.p, f.s.cfg.PutOp)
	f.s.transfer(f.p, p.Len())
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Puts++
	f.s.stats.BytesIn += p.Len()
	f.o.data.WriteAt(off, p)
	f.o.gen++
	return nil
}

// Append implements plfs.File: a part upload at the object's tail.
func (f *file) Append(p payload.Payload) (int64, error) {
	f.s.service(f.p, f.s.cfg.PutOp)
	f.s.transfer(f.p, p.Len())
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Puts++
	f.s.stats.BytesIn += p.Len()
	f.o.gen++
	return f.o.data.Append(p), nil
}

// ReadAt implements plfs.File: one GET.  Holes and the overhang past the
// last written byte read as zeros (sparse-object semantics, identical to
// the simulated POSIX store; PLFS bounds reads by the logical size).
func (f *file) ReadAt(off, n int64) (payload.List, error) {
	f.s.service(f.p, f.s.cfg.GetOp)
	f.s.transfer(f.p, n)
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Gets++
	f.s.stats.BytesOut += n
	return f.o.data.ReadAt(off, n), nil
}

// Size implements plfs.File (free: the size came with the open HEAD).
func (f *file) Size() int64 {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	return f.o.data.Size()
}

// Close implements plfs.File.  The handle is client-side state; closing
// costs nothing.
func (f *file) Close() error { return nil }

// WritevAt implements plfs.VectoredIO: K extents ship as one request —
// one round trip, one service slot, the bytes in one transfer.
func (f *file) WritevAt(segs []extent.Ext, data payload.List) error {
	f.s.service(f.p, f.s.cfg.PutOp)
	f.s.transfer(f.p, data.Len())
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Puts++
	f.s.stats.BytesIn += data.Len()
	pos := int64(0)
	for _, seg := range segs {
		off := seg.Off
		for _, p := range data.Slice(pos, seg.Len) {
			f.o.data.WriteAt(off, p)
			off += p.Len()
		}
		pos += seg.Len
	}
	f.o.gen++
	return nil
}

// ReadvAt implements plfs.VectoredIO: one GET covering all extents.
func (f *file) ReadvAt(segs []extent.Ext) (payload.List, error) {
	var total int64
	for _, seg := range segs {
		total += seg.Len
	}
	f.s.service(f.p, f.s.cfg.GetOp)
	f.s.transfer(f.p, total)
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Gets++
	f.s.stats.BytesOut += total
	var out payload.List
	for _, seg := range segs {
		out = out.Concat(f.o.data.ReadAt(seg.Off, seg.Len))
	}
	return out, nil
}

// Appendv implements plfs.BatchAppender: the batch lands as one part
// upload.
func (f *file) Appendv(pl payload.List) (int64, error) {
	f.s.service(f.p, f.s.cfg.PutOp)
	f.s.transfer(f.p, pl.Len())
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.stats.Puts++
	f.s.stats.BytesIn += pl.Len()
	f.o.gen++
	off := f.o.data.Size()
	for _, p := range pl {
		f.o.data.Append(p)
	}
	return off, nil
}
