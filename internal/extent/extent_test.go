package extent

import (
	"reflect"
	"testing"
)

func plan(t *testing.T, exts []Ext, gap, maxSpan int64) []Batch {
	t.Helper()
	return Plan(len(exts), nil, func(i int) Ext { return exts[i] }, gap, maxSpan)
}

func TestPlanExactAdjacency(t *testing.T) {
	// gap 0 merges extents that touch exactly, and nothing else.
	bs := plan(t, []Ext{{0, 10}, {10, 5}, {16, 4}}, 0, 0)
	if len(bs) != 2 {
		t.Fatalf("batches = %d, want 2: %+v", len(bs), bs)
	}
	if bs[0].Off != 0 || bs[0].Len != 15 {
		t.Errorf("batch 0 = [%d,%d), want [0,15)", bs[0].Off, bs[0].End())
	}
	if !reflect.DeepEqual(bs[0].Items, []int32{0, 1}) {
		t.Errorf("batch 0 items = %v", bs[0].Items)
	}
	if bs[1].Off != 16 || bs[1].Len != 4 {
		t.Errorf("batch 1 = [%d,%d), want [16,20)", bs[1].Off, bs[1].End())
	}
}

func TestPlanGapBoundary(t *testing.T) {
	// A gap of exactly `gap` bytes merges; gap+1 does not.
	bs := plan(t, []Ext{{0, 10}, {14, 6}}, 4, 0)
	if len(bs) != 1 || bs[0].Len != 20 {
		t.Fatalf("gap==4 at distance 4: batches %+v, want one [0,20)", bs)
	}
	bs = plan(t, []Ext{{0, 10}, {15, 5}}, 4, 0)
	if len(bs) != 2 {
		t.Fatalf("gap==4 at distance 5: batches %+v, want two", bs)
	}
}

func TestPlanSortsAndKeys(t *testing.T) {
	exts := []Ext{{100, 10}, {0, 10}, {10, 10}}
	keys := []int64{2, 1, 1}
	bs := Plan(len(exts), func(i int) int64 { return keys[i] }, func(i int) Ext { return exts[i] }, 0, 0)
	if len(bs) != 2 {
		t.Fatalf("batches = %+v, want 2 (key partition)", bs)
	}
	if bs[0].Key != 1 || bs[0].Off != 0 || bs[0].Len != 20 {
		t.Errorf("batch 0 = %+v, want key 1 [0,20)", bs[0])
	}
	if !reflect.DeepEqual(bs[0].Items, []int32{1, 2}) {
		t.Errorf("batch 0 items = %v", bs[0].Items)
	}
	if bs[1].Key != 2 || bs[1].Off != 100 {
		t.Errorf("batch 1 = %+v, want key 2 at 100", bs[1])
	}
}

func TestPlanMaxSpan(t *testing.T) {
	// Four adjacent 10-byte extents under a 20-byte cap split into two
	// batches of exactly the cap.
	bs := plan(t, []Ext{{0, 10}, {10, 10}, {20, 10}, {30, 10}}, 0, 20)
	if len(bs) != 2 || bs[0].Len != 20 || bs[1].Len != 20 {
		t.Fatalf("batches = %+v, want two of 20", bs)
	}
	// An overlap may not be split even when it exceeds the cap.
	bs = plan(t, []Ext{{0, 20}, {15, 20}}, 0, 20)
	if len(bs) != 1 || bs[0].Len != 35 {
		t.Fatalf("overlap under cap: batches = %+v, want one [0,35)", bs)
	}
}

func TestPlanStableTies(t *testing.T) {
	// Equal offsets keep input order, so last-writer-wins semantics are
	// deterministic for callers replaying items in Items order.
	bs := plan(t, []Ext{{5, 5}, {5, 5}, {5, 5}}, 0, 0)
	if len(bs) != 1 || !reflect.DeepEqual(bs[0].Items, []int32{0, 1, 2}) {
		t.Fatalf("batches = %+v, want one batch with items in input order", bs)
	}
}

func TestLive(t *testing.T) {
	exts := []Ext{{0, 10}, {20, 10}, {25, 10}}
	bs := plan(t, exts, 100, 0)
	if len(bs) != 1 {
		t.Fatalf("batches = %+v", bs)
	}
	// [0,10) + [20,35) = 25 live bytes of a 35-byte covering extent.
	if live := bs[0].Live(func(i int) Ext { return exts[i] }); live != 25 {
		t.Errorf("live = %d, want 25", live)
	}
}

func TestSplit(t *testing.T) {
	bounds := []int64{0, 10, 20, 30}
	var got []struct {
		d int
		e Ext
	}
	Split(Ext{5, 20}, bounds, func(d int, sub Ext) {
		got = append(got, struct {
			d int
			e Ext
		}{d, sub})
	})
	want := []struct {
		d int
		e Ext
	}{{0, Ext{5, 5}}, {1, Ext{10, 10}}, {2, Ext{20, 5}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("split = %+v, want %+v", got, want)
	}

	// A boundary-exact extent stays in one domain.
	got = nil
	Split(Ext{10, 10}, bounds, func(d int, sub Ext) {
		got = append(got, struct {
			d int
			e Ext
		}{d, sub})
	})
	if len(got) != 1 || got[0].d != 1 || got[0].e != (Ext{10, 10}) {
		t.Errorf("boundary-exact split = %+v", got)
	}

	// Bytes past the last boundary clamp into the last domain.
	got = nil
	Split(Ext{25, 10}, bounds, func(d int, sub Ext) {
		got = append(got, struct {
			d int
			e Ext
		}{d, sub})
	})
	want = []struct {
		d int
		e Ext
	}{{2, Ext{25, 5}}, {2, Ext{30, 5}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clamped split = %+v, want %+v", got, want)
	}
}
