// Package extent provides the byte-extent arithmetic shared by the I/O
// transformation layers: coalescing many (offset, length) pairs into
// covering batches (data sieving and list-I/O planning, two-phase run
// detection) and splitting extents at aggregator-domain boundaries.
//
// It is the single implementation behind adio's collective-buffering
// coalescer, adio's write-side sieve planner, and plfs's read-side
// sieving coalescer (planBatches), so gap and adjacency semantics cannot
// drift between layers.
package extent

import "sort"

// Ext is one contiguous byte extent.
type Ext struct {
	Off int64
	Len int64
}

// End returns the first offset past the extent.
func (e Ext) End() int64 { return e.Off + e.Len }

// Batch is one coalesced group of input extents: the covering extent,
// the partition key its members share, and the input indices that were
// merged into it, sorted by (Off, input order).
type Batch struct {
	Ext
	Key   int64
	Items []int32
}

// Plan coalesces n extents into covering batches — the extent-merge at
// the heart of data sieving and list-I/O planning.
//
//   - ext(i) returns the i-th extent; key(i) partitions the inputs
//     (extents with different keys never merge; nil means one partition).
//   - Extents are sorted by (key, offset, input order) and two neighbors
//     merge when the gap between them is at most gap bytes.  gap 0 still
//     merges exactly-adjacent extents, and overlapping extents always
//     merge.
//   - maxSpan > 0 starts a new batch rather than let a covering extent
//     exceed maxSpan bytes — except across an overlap, which must stay in
//     one batch (splitting inside an overlap would reorder the writes it
//     carries).
//
// Batches are returned in (key, offset) order.  Item indices let callers
// carry per-extent payloads or piece metadata through the plan.
func Plan(n int, key func(int) int64, ext func(int) Ext, gap, maxSpan int64) []Batch {
	if n == 0 {
		return nil
	}
	k := func(int) int64 { return 0 }
	if key != nil {
		k = key
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := int(idx[a]), int(idx[b])
		ka, kb := k(ia), k(ib)
		if ka != kb {
			return ka < kb
		}
		ea, eb := ext(ia), ext(ib)
		if ea.Off != eb.Off {
			return ea.Off < eb.Off
		}
		return idx[a] < idx[b]
	})
	out := make([]Batch, 0, n)
	for _, i := range idx {
		e := ext(int(i))
		ky := k(int(i))
		if len(out) > 0 {
			b := &out[len(out)-1]
			if b.Key == ky && e.Off <= b.End()+gap {
				overlap := e.Off < b.End()
				newEnd := b.End()
				if e.End() > newEnd {
					newEnd = e.End()
				}
				if overlap || maxSpan <= 0 || newEnd-b.Off <= maxSpan {
					b.Len = newEnd - b.Off
					b.Items = append(b.Items, i)
					continue
				}
			}
		}
		out = append(out, Batch{Ext: e, Key: ky, Items: []int32{i}})
	}
	return out
}

// Span returns the extent covering all of b's live bytes plus its gaps —
// identical to b.Ext; exposed for symmetry in callers that track waste.
// Live returns the byte count the batch's members actually cover,
// counting overlapping bytes once; Len minus Live is the gap (sieving
// waste) the covering extent carries.
func (b Batch) Live(ext func(int) Ext) int64 {
	var live, end int64
	start := true
	for _, i := range b.Items {
		e := ext(int(i))
		if start || e.Off > end {
			live += e.Len
			end = e.End()
			start = false
			continue
		}
		if e.End() > end {
			live += e.End() - end
			end = e.End()
		}
	}
	return live
}

// Split cuts extent e at the domain boundaries in bounds (ascending;
// [bounds[d], bounds[d+1]) is domain d) and emits each sub-extent with
// its domain index.  Bytes past the last boundary clamp into the last
// domain, bytes before the first into domain 0 — the aggregator-domain
// assignment two-phase collective buffering uses.
func Split(e Ext, bounds []int64, emit func(d int, sub Ext)) {
	off, n := e.Off, e.Len
	for n > 0 {
		// Find the domain containing off.
		d := sort.Search(len(bounds)-1, func(i int) bool { return bounds[i+1] > off })
		if d >= len(bounds)-1 {
			d = len(bounds) - 2
		}
		end := bounds[d+1]
		take := n
		if off+take > end && end > off {
			take = end - off
		}
		emit(d, Ext{Off: off, Len: take})
		off += take
		n -= take
	}
}
