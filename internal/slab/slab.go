// Package slab decomposes row-major hyperslab selections into contiguous
// runs — the core address arithmetic shared by the mini formatting
// libraries (internal/hdf, internal/pnetcdf).
package slab

import "fmt"

// Runs invokes emit(offsetElems, lengthElems) for each maximal contiguous
// run of the hyperslab [start, start+count) within a row-major array of
// the given dims.  Offsets and lengths are in elements.
func Runs(dims, start, count []int64, emit func(off, elems int64)) error {
	nd := len(dims)
	if len(start) != nd || len(count) != nd {
		return fmt.Errorf("slab: rank mismatch (dims %d, start %d, count %d)", nd, len(start), len(count))
	}
	if nd == 0 {
		return nil
	}
	for i := 0; i < nd; i++ {
		if start[i] < 0 || count[i] < 0 || start[i]+count[i] > dims[i] {
			return fmt.Errorf("slab: selection out of bounds in dim %d: start %d count %d extent %d",
				i, start[i], count[i], dims[i])
		}
		if count[i] == 0 {
			return nil
		}
	}
	// split: the outermost dimension still included in a contiguous run; a
	// run may take a partial count in dim split but must take the full
	// extent of every inner dimension.
	runElems := int64(1)
	split := nd
	for i := nd - 1; i >= 0; i-- {
		runElems *= count[i]
		split = i
		if count[i] != dims[i] {
			break
		}
	}
	strides := make([]int64, nd)
	s := int64(1)
	for i := nd - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	idx := make([]int64, split)
	for {
		off := start[split] * strides[split]
		for i := 0; i < split; i++ {
			off += (start[i] + idx[i]) * strides[i]
		}
		emit(off, runElems)
		i := split - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < count[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// Elements returns the element count of a selection.
func Elements(count []int64) int64 {
	n := int64(1)
	for _, c := range count {
		n *= c
	}
	return n
}
