package slab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, dims, start, count []int64) []int64 {
	t.Helper()
	var offsets []int64
	err := Runs(dims, start, count, func(off, elems int64) {
		for i := int64(0); i < elems; i++ {
			offsets = append(offsets, off+i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return offsets
}

// oracle enumerates selected linear offsets by brute force.
func oracle(dims, start, count []int64) []int64 {
	strides := make([]int64, len(dims))
	s := int64(1)
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	var out []int64
	idx := make([]int64, len(dims))
	var walk func(d int, off int64)
	walk = func(d int, off int64) {
		if d == len(dims) {
			out = append(out, off)
			return
		}
		for i := int64(0); i < count[d]; i++ {
			walk(d+1, off+(start[d]+i)*strides[d])
		}
	}
	if Elements(count) > 0 {
		walk(0, 0)
	}
	_ = idx
	return out
}

func TestRunsBasic2D(t *testing.T) {
	got := collect(t, []int64{4, 8}, []int64{1, 2}, []int64{2, 3})
	want := oracle([]int64{4, 8}, []int64{1, 2}, []int64{2, 3})
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunsFullInnerDimsCoalesce(t *testing.T) {
	runs := 0
	err := Runs([]int64{4, 8}, []int64{1, 0}, []int64{2, 8}, func(off, elems int64) {
		runs++
		if elems != 16 || off != 8 {
			t.Fatalf("run = (%d, %d)", off, elems)
		}
	})
	if err != nil || runs != 1 {
		t.Fatalf("runs = %d, err = %v", runs, err)
	}
}

func TestRunsBoundsChecking(t *testing.T) {
	if err := Runs([]int64{4}, []int64{2}, []int64{3}, func(int64, int64) {}); err == nil {
		t.Fatal("out-of-bounds selection accepted")
	}
	if err := Runs([]int64{4}, []int64{0}, []int64{2, 2}, func(int64, int64) {}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := Runs([]int64{4}, []int64{-1}, []int64{2}, func(int64, int64) {}); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestRunsZeroCountIsEmpty(t *testing.T) {
	called := false
	if err := Runs([]int64{4, 4}, []int64{0, 0}, []int64{2, 0}, func(int64, int64) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("zero-count selection emitted runs")
	}
}

// Property: Runs enumerates exactly the oracle's offsets, in order, for
// random selections up to rank 4.
func TestRunsMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(4)
		dims := make([]int64, nd)
		start := make([]int64, nd)
		count := make([]int64, nd)
		for i := range dims {
			dims[i] = 1 + int64(rng.Intn(6))
			start[i] = int64(rng.Intn(int(dims[i])))
			count[i] = int64(rng.Intn(int(dims[i]-start[i]) + 1))
		}
		var got []int64
		if err := Runs(dims, start, count, func(off, elems int64) {
			for i := int64(0); i < elems; i++ {
				got = append(got, off+i)
			}
		}); err != nil {
			return false
		}
		want := oracle(dims, start, count)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestElements(t *testing.T) {
	if Elements([]int64{3, 4, 5}) != 60 {
		t.Fatal("elements wrong")
	}
	if Elements(nil) != 1 {
		t.Fatal("empty selection should be 1 (scalar)")
	}
}
