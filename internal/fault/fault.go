// Package fault wraps plfs.Backend with a deterministic, seedable fault
// injector — the test double for the paper's "challenges" half: one
// logical file becomes N data + N index droppings, so a single slow or
// failing OST object breaks or stalls the whole logical file.  The
// injector models the failure classes middleware over an object store
// must absorb:
//
//   - transient EIO-style errors with per-operation probabilities
//     (retryable; see plfs.Options.Retry);
//   - added latency on chosen volumes (a degraded OST), charged through
//     the context's Sleeper so it rides the simulator's virtual clock in
//     simulated mode and real time over osfs;
//   - torn appends: a prefix of the payload lands before a permanent
//     error, modeling a crash mid-write (plfs Recover repairs these);
//   - permanent loss of named paths (a dead object);
//   - deterministic crash points: crashat=K halts the whole wrapped
//     backend at its K-th mutating operation (with torn-prefix semantics
//     on an append in flight), freezing the backing store in exactly the
//     state a crash there would leave.  Tests reopen the frozen state
//     with fresh unwrapped backends and can therefore enumerate every
//     crash boundary instead of sampling probabilistically.
//
// All randomness derives from the spec's seed and a global injection
// sequence number, so a simulated run injects the identical fault
// schedule every time.
package fault

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"plfs/internal/extent"
	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Op names one backend operation class for per-op fault probabilities.
type Op string

// Operation classes.  OpOpen covers OpenRead and OpenWrite; OpRead and
// OpWrite/OpAppend fire on file handles, the rest on the backend.  OpPut
// covers the conditional PUTs of object-store backends (plfs.CondPutter:
// PutIfAbsent and PutReplace); a crashing or failing conditional PUT is
// atomic — it never applies partially, so there is no torn variant.
const (
	OpMkdir   Op = "mkdir"
	OpCreate  Op = "create"
	OpOpen    Op = "open"
	OpStat    Op = "stat"
	OpReadDir Op = "readdir"
	OpRemove  Op = "remove"
	OpRename  Op = "rename"
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpAppend  Op = "append"
	OpPut     Op = "put"
)

var allOps = []Op{OpMkdir, OpCreate, OpOpen, OpStat, OpReadDir, OpRemove, OpRename, OpRead, OpWrite, OpAppend, OpPut}

// Spec describes the faults to inject.
type Spec struct {
	// Seed drives the deterministic pseudo-random fault schedule.
	Seed int64
	// P maps an operation class to its transient-error probability.
	P map[Op]float64
	// Torn is the probability that an Append lands only a prefix of its
	// payload before failing permanently (a crash mid-write).
	Torn float64
	// Delay is added latency on every operation, on every volume.
	Delay time.Duration
	// SlowVol adds latency to every operation on specific volumes.
	SlowVol map[int]time.Duration
	// Lose marks paths as permanently lost: any operation on a path
	// containing one of these substrings fails with ErrNotExist.
	Lose []string
	// CrashAt, when > 0, crashes the wrapped backend at its CrashAt-th
	// mutating operation (mkdir, create, remove, rename, write, append,
	// put — counted across all wrapped volumes).  The crashing operation does
	// not apply, except that an append in flight lands a torn prefix
	// first; every operation after the crash point fails permanently.
	// The backing store is left frozen in the post-crash state, to be
	// reopened with fresh unwrapped backends.
	CrashAt int64
	// Brownout maps a volume to a sustained degradation factor (> 1): a
	// browned-out volume's latency is multiplied by the factor (with a
	// floor of brownoutBaseLatency when no latency is otherwise
	// configured) and its operations additionally fail transiently at an
	// elevated rate of factor/100, capped at maxBrownoutP.  Harnesses can
	// also start and end brownouts mid-run with Injector.SetBrownout /
	// ClearBrownout.
	Brownout map[int]float64
}

// Brownout tuning: the latency floor applied to a browned-out volume
// with no other configured delay, and the cap on the elevated transient
// rate (factor/100).  The cap keeps a brownout a slow-but-mostly-working
// disk: much above 10%, a bounded retry loop over the several backend
// ops of an atomic commit fails outright often enough that an unsteered
// workload can't finish at all, and the figure would measure luck
// instead of latency.
const (
	brownoutBaseLatency = 250 * time.Microsecond
	maxBrownoutP        = 0.10
)

// ParseSpec parses the -fault flag syntax: comma-separated key=value
// pairs.
//
//	seed=N        RNG seed (default 1)
//	all=P         transient-error probability for every operation class
//	<op>=P        per-op probability: mkdir create open stat readdir
//	              remove rename read write append put
//	torn=P        torn-append probability
//	delay=DUR     added latency on every volume (time.ParseDuration)
//	slow=VOL:DUR  added latency on volume VOL (repeatable)
//	lose=SUBSTR   paths containing SUBSTR are permanently lost (repeatable)
//	crashat=K     crash the backend at its K-th mutating operation (K >= 1)
//	brownout=VOL:F  degrade volume VOL: latency x F plus elevated
//	              transient rate F/100 (repeatable, F > 1)
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	isOp := map[Op]bool{}
	for _, op := range allOps {
		isOp[op] = true
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("fault: %q is not key=value", kv)
		}
		switch {
		case k == "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("fault: seed %q: %v", v, err)
			}
			spec.Seed = n
		case k == "all":
			p, err := parseProb(k, v)
			if err != nil {
				return spec, err
			}
			if spec.P == nil {
				spec.P = map[Op]float64{}
			}
			for _, op := range allOps {
				spec.P[op] = p
			}
		case isOp[Op(k)]:
			p, err := parseProb(k, v)
			if err != nil {
				return spec, err
			}
			if spec.P == nil {
				spec.P = map[Op]float64{}
			}
			spec.P[Op(k)] = p
		case k == "torn":
			p, err := parseProb(k, v)
			if err != nil {
				return spec, err
			}
			spec.Torn = p
		case k == "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return spec, fmt.Errorf("fault: delay %q: %v", v, err)
			}
			spec.Delay = d
		case k == "slow":
			vol, dur, ok := strings.Cut(v, ":")
			if !ok {
				return spec, fmt.Errorf("fault: slow %q is not VOL:DUR", v)
			}
			n, err := strconv.Atoi(vol)
			if err != nil {
				return spec, fmt.Errorf("fault: slow volume %q: %v", vol, err)
			}
			d, err := time.ParseDuration(dur)
			if err != nil {
				return spec, fmt.Errorf("fault: slow duration %q: %v", dur, err)
			}
			if spec.SlowVol == nil {
				spec.SlowVol = map[int]time.Duration{}
			}
			spec.SlowVol[n] = d
		case k == "lose":
			spec.Lose = append(spec.Lose, v)
		case k == "brownout":
			vol, fac, ok := strings.Cut(v, ":")
			if !ok {
				return spec, fmt.Errorf("fault: brownout %q is not VOL:FACTOR", v)
			}
			n, err := strconv.Atoi(vol)
			if err != nil {
				return spec, fmt.Errorf("fault: brownout volume %q: %v", vol, err)
			}
			fl, err := strconv.ParseFloat(fac, 64)
			if err != nil || fl <= 1 {
				return spec, fmt.Errorf("fault: brownout factor %q must be > 1", fac)
			}
			if spec.Brownout == nil {
				spec.Brownout = map[int]float64{}
			}
			spec.Brownout[n] = fl
		case k == "crashat":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return spec, fmt.Errorf("fault: crashat %q is not a positive op index", v)
			}
			spec.CrashAt = n
		default:
			return spec, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	return spec, nil
}

func parseProb(k, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("fault: %s %q is not a probability in [0,1]", k, v)
	}
	return p, nil
}

// String renders the spec back in ParseSpec syntax.
func (s Spec) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	ops := make([]string, 0, len(s.P))
	for op := range s.P {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%s=%g", op, s.P[Op(op)]))
	}
	if s.Torn > 0 {
		parts = append(parts, fmt.Sprintf("torn=%g", s.Torn))
	}
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", s.Delay))
	}
	vols := make([]int, 0, len(s.SlowVol))
	for v := range s.SlowVol {
		vols = append(vols, v)
	}
	sort.Ints(vols)
	for _, v := range vols {
		parts = append(parts, fmt.Sprintf("slow=%d:%s", v, s.SlowVol[v]))
	}
	for _, l := range s.Lose {
		parts = append(parts, "lose="+l)
	}
	if s.CrashAt > 0 {
		parts = append(parts, fmt.Sprintf("crashat=%d", s.CrashAt))
	}
	bvols := make([]int, 0, len(s.Brownout))
	for v := range s.Brownout {
		bvols = append(bvols, v)
	}
	sort.Ints(bvols)
	for _, v := range bvols {
		parts = append(parts, fmt.Sprintf("brownout=%d:%g", v, s.Brownout[v]))
	}
	return strings.Join(parts, ",")
}

// Kind classifies an injected error.
type Kind int

// Injected error classes.
const (
	// Transient is a retryable EIO-style failure: the operation did not
	// happen and may be reissued.
	Transient Kind = iota
	// Torn is a permanent append failure after a prefix of the payload
	// landed (crash damage; plfs Recover handles the aftermath).
	Torn
	// Lost is a permanently missing path (satisfies errors.Is ErrNotExist).
	Lost
	// Crashed means the backend hit its crash point: the whole store is
	// frozen and every further operation fails permanently.
	Crashed
)

// Error is an injected fault.
type Error struct {
	// Op is the operation class the fault fired on.
	Op Op
	// Path is the backend path the operation targeted.
	Path string
	// Kind classifies the injected failure.
	Kind Kind
	// inFlight marks the mutating operation that triggered the crash
	// point itself (as opposed to operations after it): an append in
	// flight lands a torn prefix before the error surfaces.
	inFlight bool
}

// Error implements error.
func (e *Error) Error() string {
	switch e.Kind {
	case Torn:
		return fmt.Sprintf("fault: torn %s %s", e.Op, e.Path)
	case Lost:
		return fmt.Sprintf("fault: lost path %s %s", e.Op, e.Path)
	case Crashed:
		return fmt.Sprintf("fault: backend crashed (%s %s)", e.Op, e.Path)
	}
	return fmt.Sprintf("fault: transient %s error on %s", e.Op, e.Path)
}

// Transient reports whether a retry may succeed; the plfs retry policy
// honors it via errors.As.  Crashed and Torn report false so retry loops
// fail fast instead of hammering a dead store.
func (e *Error) Transient() bool { return e.Kind == Transient }

// TornWrite reports whether the failed operation may have applied a
// prefix of its payload (torn appends, and the append in flight at a
// crash point).  Atomic-commit writers use it to decide that retrying
// onto a fresh temp file is safe while in-place retry is not.
func (e *Error) TornWrite() bool { return e.Kind == Torn || (e.Kind == Crashed && e.inFlight) }

// Unwrap maps lost paths onto ErrNotExist so backend users treat them
// like any other missing file.
func (e *Error) Unwrap() error {
	if e.Kind == Lost {
		return iofs.ErrNotExist
	}
	return nil
}

// Injector produces fault-wrapped backends from one shared schedule.
// It is safe for concurrent use; under the discrete-event simulator
// (where processes run one at a time) the schedule is fully
// deterministic in the seed.
type Injector struct {
	spec Spec

	// Obs, when non-nil, receives live fault counters: one
	// "fault.injected.<op>" counter per op class and "fault.crashed" when
	// the crash point fires (see internal/obs and DESIGN.md §11).  Set it
	// before wrapping backends; nil disables publication.
	Obs *obs.Registry

	mu       sync.Mutex
	seq      uint64
	counts   map[Op]int
	mutOps   int64
	crashed  bool
	brownout map[int]float64
}

// New builds an injector for the spec.
func New(spec Spec) *Injector {
	bo := map[int]float64{}
	for v, f := range spec.Brownout {
		bo[v] = f
	}
	return &Injector{spec: spec, counts: map[Op]int{}, brownout: bo}
}

// SetBrownout starts (or retunes) a brownout on vol: latency x factor
// with an elevated transient rate of factor/100 (capped).  Harnesses
// call it at a virtual-time boundary to model a RAID rebuild or
// overloaded OST beginning mid-run.  Factors <= 1 clear the brownout.
func (in *Injector) SetBrownout(vol int, factor float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if factor <= 1 {
		delete(in.brownout, vol)
		return
	}
	in.brownout[vol] = factor
}

// ClearBrownout ends the brownout on vol, restoring its healthy latency
// and error rate.
func (in *Injector) ClearBrownout(vol int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.brownout, vol)
}

// brownoutFactor returns vol's current degradation factor (0 = healthy).
func (in *Injector) brownoutFactor(vol int) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.brownout[vol]
}

// fireBrownout decides whether the browned-out volume's elevated
// transient rate hits this (op, path) call.  Healthy volumes roll no
// dice, so enabling a brownout on one volume leaves the others'
// schedules aligned with the op order, not with extra draws.
func (in *Injector) fireBrownout(op Op, path string, vol int) bool {
	fac := in.brownoutFactor(vol)
	if fac <= 1 {
		return false
	}
	p := fac / 100
	if p > maxBrownoutP {
		p = maxBrownoutP
	}
	if in.roll(op, "brownout:"+path) >= p {
		return false
	}
	in.count(op)
	return true
}

// Spec returns the injector's fault specification.
func (in *Injector) Spec() Spec { return in.spec }

// Injected returns how many faults of each op class have fired (torn
// appends count under OpAppend).
func (in *Injector) Injected() map[Op]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Op]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// MutatingOps returns how many mutating operations (mkdir, create,
// remove, rename, write, append, put) have reached the wrapped backends.
// It counts even when no crash point is set, so a fault-free counting
// run establishes the sweep bound for crashat enumeration.
func (in *Injector) MutatingOps() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.mutOps
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

func mutating(op Op) bool {
	switch op {
	case OpMkdir, OpCreate, OpRemove, OpRename, OpWrite, OpAppend, OpPut:
		return true
	}
	return false
}

// crashCheck counts mutating ops and decides whether this call is at or
// past the crash point.  It returns a nil error, or a Crashed error that
// is inFlight exactly for the operation that tripped the crash.
func (in *Injector) crashCheck(op Op, path string) *Error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return &Error{Op: op, Path: path, Kind: Crashed}
	}
	if !mutating(op) {
		return nil
	}
	in.mutOps++
	if in.spec.CrashAt > 0 && in.mutOps == in.spec.CrashAt {
		in.crashed = true
		if in.Obs != nil {
			in.Obs.Counter("fault.crashed").Add(1)
		}
		return &Error{Op: op, Path: path, Kind: Crashed, inFlight: true}
	}
	return nil
}

// roll returns a deterministic pseudo-random value in [0,1) for the next
// injection decision on (op, path).
func (in *Injector) roll(op Op, path string) float64 {
	in.mu.Lock()
	in.seq++
	seq := in.seq
	in.mu.Unlock()
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(in.spec.Seed))
	binary.LittleEndian.PutUint64(b[8:], seq)
	h.Write(b[:])
	h.Write([]byte(op))
	h.Write([]byte(path))
	x := h.Sum64()
	// splitmix64 finalizer whitens the hash before mapping onto [0,1).
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func (in *Injector) count(op Op) {
	in.mu.Lock()
	in.counts[op]++
	in.mu.Unlock()
	if in.Obs != nil {
		in.Obs.Counter("fault.injected." + string(op)).Add(1)
	}
}

// fire decides whether a transient error hits this (op, path) call.
func (in *Injector) fire(op Op, path string) bool {
	p := in.spec.P[op]
	if p <= 0 {
		return false
	}
	if in.roll(op, path) >= p {
		return false
	}
	in.count(op)
	return true
}

func (in *Injector) fireTorn(path string) bool {
	if in.spec.Torn <= 0 {
		return false
	}
	if in.roll(OpAppend, "torn:"+path) >= in.spec.Torn {
		return false
	}
	in.count(OpAppend)
	return true
}

func (in *Injector) lost(path string) bool {
	for _, sub := range in.spec.Lose {
		if sub != "" && strings.Contains(path, sub) {
			return true
		}
	}
	return false
}

// latency charges the configured delay for volume vol through sleep;
// a nil sleeper falls back to real time.  A browned-out volume's delay
// is multiplied by its factor, from a floor of brownoutBaseLatency when
// the volume is otherwise undelayed.
func (in *Injector) latency(vol int, sleep plfs.Sleeper) {
	d := in.spec.Delay + in.spec.SlowVol[vol]
	if fac := in.brownoutFactor(vol); fac > 1 {
		if d <= 0 {
			d = brownoutBaseLatency
		}
		d = time.Duration(float64(d) * fac)
	}
	if d <= 0 {
		return
	}
	if sleep != nil {
		sleep.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Wrap returns b with the injector's faults applied.  vol selects the
// SlowVol latency entry; sleep is how injected latency is charged (use
// the plfs.Ctx's Sleeper so simulated latency rides the virtual clock;
// nil sleeps in real time).
func (in *Injector) Wrap(b plfs.Backend, vol int, sleep plfs.Sleeper) plfs.Backend {
	return &backend{b: b, in: in, vol: vol, sleep: sleep}
}

// WrapVols wraps a context's whole volume set (see Wrap).
func (in *Injector) WrapVols(vols []plfs.Backend, sleep plfs.Sleeper) []plfs.Backend {
	out := make([]plfs.Backend, len(vols))
	for i, v := range vols {
		out[i] = in.Wrap(v, i, sleep)
	}
	return out
}

type backend struct {
	b     plfs.Backend
	in    *Injector
	vol   int
	sleep plfs.Sleeper
}

// ConcurrentIO forwards the wrapped backend's advertisement: the
// injector itself is goroutine-safe, so fan-out safety is whatever the
// underlying store provides.
func (f *backend) ConcurrentIO() bool {
	c, ok := f.b.(plfs.ConcurrentIO)
	return ok && c.ConcurrentIO()
}

// gate runs the injection decision that precedes every backend call.
// The crash check comes first: a crashed store charges no latency and
// rolls no probabilistic faults, it is simply gone.
func (f *backend) gate(op Op, path string) error {
	if err := f.in.crashCheck(op, path); err != nil {
		return err
	}
	f.in.latency(f.vol, f.sleep)
	if f.in.lost(path) {
		return &Error{Op: op, Path: path, Kind: Lost}
	}
	if f.in.fire(op, path) || f.in.fireBrownout(op, path, f.vol) {
		return &Error{Op: op, Path: path, Kind: Transient}
	}
	return nil
}

// Mkdir implements plfs.Backend.
func (f *backend) Mkdir(path string) error {
	if err := f.gate(OpMkdir, path); err != nil {
		return err
	}
	return f.b.Mkdir(path)
}

// Create implements plfs.Backend.
func (f *backend) Create(path string) (plfs.File, error) {
	if err := f.gate(OpCreate, path); err != nil {
		return nil, err
	}
	fl, err := f.b.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{f: fl, path: path, b: f}, nil
}

// OpenRead implements plfs.Backend.
func (f *backend) OpenRead(path string) (plfs.File, error) {
	if err := f.gate(OpOpen, path); err != nil {
		return nil, err
	}
	fl, err := f.b.OpenRead(path)
	if err != nil {
		return nil, err
	}
	return &file{f: fl, path: path, b: f}, nil
}

// OpenWrite implements plfs.Backend.
func (f *backend) OpenWrite(path string) (plfs.File, error) {
	if err := f.gate(OpOpen, path); err != nil {
		return nil, err
	}
	fl, err := f.b.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	return &file{f: fl, path: path, b: f}, nil
}

// Stat implements plfs.Backend.
func (f *backend) Stat(path string) (plfs.Info, error) {
	if err := f.gate(OpStat, path); err != nil {
		return plfs.Info{}, err
	}
	return f.b.Stat(path)
}

// ReadDir implements plfs.Backend.
func (f *backend) ReadDir(path string) ([]plfs.Info, error) {
	if err := f.gate(OpReadDir, path); err != nil {
		return nil, err
	}
	return f.b.ReadDir(path)
}

// Remove implements plfs.Backend.
func (f *backend) Remove(path string) error {
	if err := f.gate(OpRemove, path); err != nil {
		return err
	}
	return f.b.Remove(path)
}

// Rename implements plfs.Backend.
func (f *backend) Rename(oldPath, newPath string) error {
	if err := f.gate(OpRename, oldPath); err != nil {
		return err
	}
	if f.in.lost(newPath) {
		return &Error{Op: OpRename, Path: newPath, Kind: Lost}
	}
	return f.b.Rename(oldPath, newPath)
}

// PutIfAbsent implements plfs.CondPutter.  The inner backend is probed
// first: when it lacks the capability, errors.ErrUnsupported returns
// before any gate — no latency, no dice, no mutating-op count — so a
// caller probing a POSIX-backed wrapper leaves the crashat schedule
// undistorted.  A supported conditional PUT gates as one mutating op;
// a crash or transient on it means the PUT did not apply (atomicity is
// the backend's contract — there is no torn conditional PUT).
func (f *backend) PutIfAbsent(path string, data []byte) error {
	cp, ok := f.b.(plfs.CondPutter)
	if !ok {
		return errors.ErrUnsupported
	}
	if err := f.gate(OpPut, path); err != nil {
		return err
	}
	return cp.PutIfAbsent(path, data)
}

// CreateBulk implements plfs.BulkCreator.  Like PutIfAbsent, an inner
// backend without the capability answers errors.ErrUnsupported before any
// gate fires.  Each entry then gates individually as one mutating op —
// mkdirs as OpMkdir, files as OpCreate — so a crashat point mid-batch
// applies a strict prefix: the entries before the crash are shipped to
// the inner bulk RPC and land, the rest report Crashed.  That is the
// server-side semantics of a real MDS bulk commit dying partway through
// its journal, and it keeps the crash-torture sweep's op schedule honest.
func (f *backend) CreateBulk(ops []plfs.BulkOp) []error {
	bc, ok := f.b.(plfs.BulkCreator)
	if !ok {
		errs := make([]error, len(ops))
		for i := range errs {
			errs[i] = errors.ErrUnsupported
		}
		return errs
	}
	errs := make([]error, len(ops))
	var pass []plfs.BulkOp
	var passIdx []int
	for i, op := range ops {
		gateOp := OpCreate
		if op.Dir {
			gateOp = OpMkdir
		}
		if err := f.gate(gateOp, op.Path); err != nil {
			errs[i] = err
			continue
		}
		pass = append(pass, op)
		passIdx = append(passIdx, i)
	}
	for j, err := range bc.CreateBulk(pass) {
		errs[passIdx[j]] = err
	}
	return errs
}

// PutReplace implements plfs.CondPutter (see PutIfAbsent).
func (f *backend) PutReplace(path string, data []byte) error {
	cp, ok := f.b.(plfs.CondPutter)
	if !ok {
		return errors.ErrUnsupported
	}
	if err := f.gate(OpPut, path); err != nil {
		return err
	}
	return cp.PutReplace(path, data)
}

type file struct {
	f    plfs.File
	path string
	b    *backend
}

// WriteAt implements plfs.File.
func (f *file) WriteAt(off int64, p payload.Payload) error {
	if err := f.b.gate(OpWrite, f.path); err != nil {
		return err
	}
	return f.f.WriteAt(off, p)
}

// Append implements plfs.File.  Transient errors fire before any byte
// lands (so a retry reissues cleanly); torn errors land a prefix first
// and are permanent.  An append in flight at the crash point gets the
// same torn-prefix treatment: half the payload is on disk when the
// machine dies.
func (f *file) Append(p payload.Payload) (int64, error) {
	if err := f.b.gate(OpAppend, f.path); err != nil {
		var fe *Error
		if errors.As(err, &fe) && fe.Kind == Crashed && fe.inFlight {
			if half := p.Len() / 2; half > 0 {
				f.f.Append(p.Slice(0, half))
			}
		}
		return 0, err
	}
	if f.b.in.fireTorn(f.path) {
		if half := p.Len() / 2; half > 0 {
			f.f.Append(p.Slice(0, half))
		}
		return 0, &Error{Op: OpAppend, Path: f.path, Kind: Torn}
	}
	return f.f.Append(p)
}

// ReadAt implements plfs.File.
func (f *file) ReadAt(off, n int64) (payload.List, error) {
	if err := f.b.gate(OpRead, f.path); err != nil {
		return nil, err
	}
	return f.f.ReadAt(off, n)
}

// Size implements plfs.File.
func (f *file) Size() int64 { return f.f.Size() }

// Close implements plfs.File.
func (f *file) Close() error { return f.f.Close() }

// Batched capabilities (plfs.VectoredIO, plfs.BatchAppender) are
// forwarded with per-piece injection semantics: a batch charges one
// latency and counts as one mutating operation (that is the point of
// batching), but every extent or payload piece rolls its own
// transient/torn dice, so coverage matches the equivalent per-extent
// loop.  Prefix semantics are defined exactly: the pieces before the
// first failing one land, a torn failure additionally lands half of the
// failing piece, and any failure after the first piece reports
// TornWrite() so retry loops rebuild instead of reissuing in place.

// WritevAt implements plfs.VectoredIO.  Transient errors (one die per
// extent) fire before any byte lands, so a retry reissues cleanly —
// WriteAt is idempotent at its offsets.
func (f *file) WritevAt(segs []extent.Ext, data payload.List) error {
	if err := f.b.gate(OpWrite, f.path); err != nil {
		return err
	}
	for i := 1; i < len(segs); i++ {
		if f.b.in.fire(OpWrite, f.path) || f.b.in.fireBrownout(OpWrite, f.path, f.b.vol) {
			return &Error{Op: OpWrite, Path: f.path, Kind: Transient}
		}
	}
	if vio, ok := f.f.(plfs.VectoredIO); ok {
		return vio.WritevAt(segs, data)
	}
	pos := int64(0)
	for _, s := range segs {
		off := s.Off
		for _, p := range data.Slice(pos, s.Len) {
			if err := f.f.WriteAt(off, p); err != nil {
				return err
			}
			off += p.Len()
		}
		pos += s.Len
	}
	return nil
}

// ReadvAt implements plfs.VectoredIO (one transient die per extent; a
// failed vectored read returns no bytes).
func (f *file) ReadvAt(segs []extent.Ext) (payload.List, error) {
	if err := f.b.gate(OpRead, f.path); err != nil {
		return nil, err
	}
	for i := 1; i < len(segs); i++ {
		if f.b.in.fire(OpRead, f.path) || f.b.in.fireBrownout(OpRead, f.path, f.b.vol) {
			return nil, &Error{Op: OpRead, Path: f.path, Kind: Transient}
		}
	}
	if vio, ok := f.f.(plfs.VectoredIO); ok {
		return vio.ReadvAt(segs)
	}
	var out payload.List
	for _, s := range segs {
		pl, err := f.f.ReadAt(s.Off, s.Len)
		if err != nil {
			return nil, err
		}
		out = out.Concat(pl)
	}
	return out, nil
}

// Appendv implements plfs.BatchAppender.  Each piece rolls its own
// transient and torn dice in order: the pieces before the first failure
// land, a torn failure lands half of the failing piece too, and a crash
// in flight lands the first half of the batch (the batched analogue of
// the single-append torn prefix).  A failure on the first piece is a
// clean Transient — nothing landed, retry reissues safely; any later
// failure is permanent and reports TornWrite().
func (f *file) Appendv(pl payload.List) (int64, error) {
	in := f.b.in
	if err := in.crashCheck(OpAppend, f.path); err != nil {
		if err.inFlight {
			if k := len(pl) / 2; k > 0 {
				f.appendvUnder(pl[:k])
			}
		}
		return 0, err
	}
	in.latency(f.b.vol, f.b.sleep)
	if in.lost(f.path) {
		return 0, &Error{Op: OpAppend, Path: f.path, Kind: Lost}
	}
	for i, p := range pl {
		if in.fire(OpAppend, f.path) || in.fireBrownout(OpAppend, f.path, f.b.vol) {
			if i == 0 {
				return 0, &Error{Op: OpAppend, Path: f.path, Kind: Transient}
			}
			f.appendvUnder(pl[:i])
			return 0, &Error{Op: OpAppend, Path: f.path, Kind: Torn}
		}
		if in.fireTorn(f.path) {
			prefix := pl[:i:i]
			if half := p.Len() / 2; half > 0 {
				prefix = append(prefix, p.Slice(0, half))
			}
			f.appendvUnder(prefix)
			return 0, &Error{Op: OpAppend, Path: f.path, Kind: Torn}
		}
	}
	return f.appendvUnder(pl)
}

// appendvUnder lands pieces on the wrapped handle, batched when the
// handle can, without rolling further dice.
func (f *file) appendvUnder(pl payload.List) (int64, error) {
	if len(pl) == 0 {
		return f.f.Size(), nil
	}
	if ba, ok := f.f.(plfs.BatchAppender); ok {
		return ba.Appendv(pl)
	}
	off, err := f.f.Append(pl[0])
	if err != nil {
		return 0, err
	}
	for _, p := range pl[1:] {
		if _, err := f.f.Append(p); err != nil {
			return off, err
		}
	}
	return off, nil
}

// LockRange implements plfs.RangeLocker by forwarding to the wrapped
// handle; the lock itself is not a faultable backend operation (it
// guards middleware-level RMW windows, not stored bytes), so no gate.
// A handle without the capability makes this a no-op, keeping sieving
// correct-but-unserialized tests explicit about their backend choice.
func (f *file) LockRange(off, n int64) error {
	if rl, ok := f.f.(plfs.RangeLocker); ok {
		return rl.LockRange(off, n)
	}
	return nil
}

// UnlockRange implements plfs.RangeLocker (see LockRange).
func (f *file) UnlockRange(off, n int64) error {
	if rl, ok := f.f.(plfs.RangeLocker); ok {
		return rl.UnlockRange(off, n)
	}
	return nil
}
