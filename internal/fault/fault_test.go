package fault_test

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"testing"
	"time"

	"plfs/internal/fault"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"seed=7",
		"seed=7,all=0.05",
		"open=0.1,read=0.2,torn=0.01",
		"delay=2ms,slow=0:5ms,slow=3:1ms",
		"lose=hostdir.3,lose=dropping.index",
	}
	for _, s := range cases {
		spec, err := fault.ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		// Re-parsing the canonical form must yield the same spec.
		again, err := fault.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q <- %q): %v", spec.String(), s, err)
		}
		if spec.String() != again.String() {
			t.Errorf("round trip %q -> %q -> %q", s, spec.String(), again.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, s := range []string{"bogus", "all=1.5", "all=-0.1", "seed=x", "delay=fast", "slow=0", "frob=0.5"} {
		if _, err := fault.ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// TestDeterminism: the same seed and call sequence must inject the same
// faults; a different seed must (for this spec) differ.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in := fault.New(fault.Spec{Seed: seed, P: map[fault.Op]float64{fault.OpStat: 0.5}})
		b := in.Wrap(osfs.New(), 0, nil)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := b.Stat("/nonexistent")
			var fe *fault.Error
			out = append(out, errors.As(err, &fe))
		}
		return out
	}
	a, b, c := run(1), run(1), run(2)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Errorf("same seed produced different schedules")
	}
	if !diff {
		t.Errorf("different seeds produced identical schedules")
	}
}

// TestTornAppend: with torn=1 every append lands exactly half its
// payload and fails permanently (not retryable).
func TestTornAppend(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{Seed: 1, Torn: 1})
	b := in.Wrap(osfs.New(), 0, nil)
	f, err := b.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Append(payload.Synthetic(1, 0, 100))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Torn {
		t.Fatalf("append error = %v, want torn fault", err)
	}
	if fe.Transient() {
		t.Errorf("torn append claims to be transient")
	}
	if got := f.Size(); got != 50 {
		t.Errorf("torn append landed %d bytes, want 50", got)
	}
}

// TestLose: operations on lost paths fail with something that unwraps to
// ErrNotExist; other paths are untouched.
func TestLose(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{Seed: 1, Lose: []string{"gone"}})
	b := in.Wrap(osfs.New(), 0, nil)
	if f, err := b.Create(filepath.Join(dir, "ok")); err != nil {
		t.Fatalf("untouched path: %v", err)
	} else {
		f.Close()
	}
	_, err := b.Create(filepath.Join(dir, "gone"))
	if !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("lost path error = %v, want ErrNotExist", err)
	}
	if plfs.Retryable(err) {
		t.Errorf("lost-path error is retryable")
	}
}

type recordSleeper struct{ total time.Duration }

func (s *recordSleeper) Sleep(d time.Duration) { s.total += d }

// TestLatency: Delay and SlowVol are charged through the provided
// sleeper, not real time.
func TestLatency(t *testing.T) {
	in := fault.New(fault.Spec{
		Seed:    1,
		Delay:   2 * time.Millisecond,
		SlowVol: map[int]time.Duration{1: 5 * time.Millisecond},
	})
	fast := &recordSleeper{}
	slow := &recordSleeper{}
	b0 := in.Wrap(osfs.New(), 0, fast)
	b1 := in.Wrap(osfs.New(), 1, slow)
	b0.Stat("/nonexistent")
	b1.Stat("/nonexistent")
	if fast.total != 2*time.Millisecond {
		t.Errorf("vol 0 charged %v, want 2ms", fast.total)
	}
	if slow.total != 7*time.Millisecond {
		t.Errorf("vol 1 charged %v, want 7ms", slow.total)
	}
}

// TestTransientRetryable: injected transient errors advertise
// themselves to the retry policy; counts are visible via Injected.
func TestTransientRetryable(t *testing.T) {
	in := fault.New(fault.Spec{Seed: 1, P: map[fault.Op]float64{fault.OpMkdir: 1}})
	b := in.Wrap(osfs.New(), 0, nil)
	err := b.Mkdir(filepath.Join(t.TempDir(), "d"))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Transient {
		t.Fatalf("mkdir error = %v, want transient fault", err)
	}
	if !plfs.Retryable(err) {
		t.Errorf("transient fault not retryable")
	}
	if got := in.Injected()[fault.OpMkdir]; got != 1 {
		t.Errorf("Injected()[mkdir] = %d, want 1", got)
	}
}
