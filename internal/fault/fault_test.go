package fault_test

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"testing"
	"time"

	"plfs/internal/extent"
	"plfs/internal/fault"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"seed=7",
		"seed=7,all=0.05",
		"open=0.1,read=0.2,torn=0.01",
		"delay=2ms,slow=0:5ms,slow=3:1ms",
		"lose=hostdir.3,lose=dropping.index",
		"brownout=1:8",
		"seed=3,all=0.02,brownout=0:4,brownout=2:16",
	}
	for _, s := range cases {
		spec, err := fault.ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		// Re-parsing the canonical form must yield the same spec.
		again, err := fault.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q <- %q): %v", spec.String(), s, err)
		}
		if spec.String() != again.String() {
			t.Errorf("round trip %q -> %q -> %q", s, spec.String(), again.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, s := range []string{"bogus", "all=1.5", "all=-0.1", "seed=x", "delay=fast", "slow=0", "frob=0.5"} {
		if _, err := fault.ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// TestDeterminism: the same seed and call sequence must inject the same
// faults; a different seed must (for this spec) differ.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in := fault.New(fault.Spec{Seed: seed, P: map[fault.Op]float64{fault.OpStat: 0.5}})
		b := in.Wrap(osfs.New(), 0, nil)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := b.Stat("/nonexistent")
			var fe *fault.Error
			out = append(out, errors.As(err, &fe))
		}
		return out
	}
	a, b, c := run(1), run(1), run(2)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Errorf("same seed produced different schedules")
	}
	if !diff {
		t.Errorf("different seeds produced identical schedules")
	}
}

// TestTornAppend: with torn=1 every append lands exactly half its
// payload and fails permanently (not retryable).
func TestTornAppend(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{Seed: 1, Torn: 1})
	b := in.Wrap(osfs.New(), 0, nil)
	f, err := b.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Append(payload.Synthetic(1, 0, 100))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Torn {
		t.Fatalf("append error = %v, want torn fault", err)
	}
	if fe.Transient() {
		t.Errorf("torn append claims to be transient")
	}
	if got := f.Size(); got != 50 {
		t.Errorf("torn append landed %d bytes, want 50", got)
	}
}

// TestLose: operations on lost paths fail with something that unwraps to
// ErrNotExist; other paths are untouched.
func TestLose(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{Seed: 1, Lose: []string{"gone"}})
	b := in.Wrap(osfs.New(), 0, nil)
	if f, err := b.Create(filepath.Join(dir, "ok")); err != nil {
		t.Fatalf("untouched path: %v", err)
	} else {
		f.Close()
	}
	_, err := b.Create(filepath.Join(dir, "gone"))
	if !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("lost path error = %v, want ErrNotExist", err)
	}
	if plfs.Retryable(err) {
		t.Errorf("lost-path error is retryable")
	}
}

type recordSleeper struct{ total time.Duration }

func (s *recordSleeper) Sleep(d time.Duration) { s.total += d }

// TestLatency: Delay and SlowVol are charged through the provided
// sleeper, not real time.
func TestLatency(t *testing.T) {
	in := fault.New(fault.Spec{
		Seed:    1,
		Delay:   2 * time.Millisecond,
		SlowVol: map[int]time.Duration{1: 5 * time.Millisecond},
	})
	fast := &recordSleeper{}
	slow := &recordSleeper{}
	b0 := in.Wrap(osfs.New(), 0, fast)
	b1 := in.Wrap(osfs.New(), 1, slow)
	b0.Stat("/nonexistent")
	b1.Stat("/nonexistent")
	if fast.total != 2*time.Millisecond {
		t.Errorf("vol 0 charged %v, want 2ms", fast.total)
	}
	if slow.total != 7*time.Millisecond {
		t.Errorf("vol 1 charged %v, want 7ms", slow.total)
	}
}

// TestTransientRetryable: injected transient errors advertise
// themselves to the retry policy; counts are visible via Injected.
func TestTransientRetryable(t *testing.T) {
	in := fault.New(fault.Spec{Seed: 1, P: map[fault.Op]float64{fault.OpMkdir: 1}})
	b := in.Wrap(osfs.New(), 0, nil)
	err := b.Mkdir(filepath.Join(t.TempDir(), "d"))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Transient {
		t.Fatalf("mkdir error = %v, want transient fault", err)
	}
	if !plfs.Retryable(err) {
		t.Errorf("transient fault not retryable")
	}
	if got := in.Injected()[fault.OpMkdir]; got != 1 {
		t.Errorf("Injected()[mkdir] = %d, want 1", got)
	}
}

// TestCrashAt: the crash point fires on exactly the K-th mutating
// operation, tears the append in flight, and freezes the backend — every
// later operation (mutating or not) fails, while the pre-crash on-disk
// state stays reopenable through an unwrapped backend.
func TestCrashAt(t *testing.T) {
	dir := t.TempDir()
	spec, err := fault.ParseSpec("crashat=3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.CrashAt != 3 {
		t.Fatalf("CrashAt = %d, want 3", spec.CrashAt)
	}
	if again, err := fault.ParseSpec(spec.String()); err != nil || again.CrashAt != 3 {
		t.Fatalf("round trip %q: %v (crashat=%d)", spec.String(), err, again.CrashAt)
	}
	in := fault.New(spec)
	b := in.Wrap(osfs.New(), 0, nil)

	// Op 1: create.  Op 2: append (lands whole).
	f, err := b.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("op 1 create: %v", err)
	}
	if _, err := f.Append(payload.Synthetic(1, 0, 100)); err != nil {
		t.Fatalf("op 2 append: %v", err)
	}
	if in.Crashed() {
		t.Fatal("crashed before the crash point")
	}
	// Op 3: the crash point — a torn prefix lands, then the error.
	_, err = f.Append(payload.Synthetic(1, 100, 100))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Crashed {
		t.Fatalf("op 3 error = %v, want crashed fault", err)
	}
	if !fe.TornWrite() {
		t.Error("in-flight crash op does not report TornWrite")
	}
	if fe.Transient() || plfs.Retryable(err) {
		t.Error("crashed error must not be transient/retryable")
	}
	if !in.Crashed() || in.MutatingOps() != 3 {
		t.Fatalf("crashed=%v mutOps=%d, want true/3", in.Crashed(), in.MutatingOps())
	}

	// Post-crash: everything fails, including reads and non-mutating ops.
	if _, err := b.Stat(filepath.Join(dir, "x")); err == nil {
		t.Error("stat succeeded after crash")
	}
	if _, err := b.Create(filepath.Join(dir, "y")); err == nil {
		t.Error("create succeeded after crash")
	}
	var fe2 *fault.Error
	_, err = b.OpenRead(filepath.Join(dir, "x"))
	if !errors.As(err, &fe2) || fe2.Kind != fault.Crashed {
		t.Fatalf("post-crash open error = %v, want crashed fault", err)
	}
	if fe2.TornWrite() {
		t.Error("post-crash op (not in flight) claims TornWrite")
	}
	if errors.Is(err, iofs.ErrNotExist) {
		t.Error("crashed error unwraps to ErrNotExist")
	}

	// The frozen on-disk state: the full op-2 append plus the op-3 torn
	// prefix (half of 100 bytes).
	fi, err := osfs.New().Stat(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("unwrapped reopen: %v", err)
	}
	if fi.Size != 150 {
		t.Fatalf("post-crash size %d, want 150 (100 committed + 50 torn)", fi.Size)
	}
}

// TestCrashAtCountsOnlyMutatingOps: reads and stats never advance the
// crash counter, so op indexes enumerate commit boundaries, not traffic.
func TestCrashAtCountsOnlyMutatingOps(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{CrashAt: 2})
	b := in.Wrap(osfs.New(), 0, nil)
	f, err := b.Create(filepath.Join(dir, "x")) // mutating op 1
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	for i := 0; i < 5; i++ { // non-mutating: must not trip the crash
		if _, err := b.Stat(filepath.Join(dir, "x")); err != nil {
			t.Fatalf("stat %d: %v", i, err)
		}
	}
	if err := b.Mkdir(filepath.Join(dir, "d")); err == nil { // mutating op 2
		t.Fatal("op 2 mkdir did not crash")
	}
	if in.MutatingOps() != 2 {
		t.Fatalf("mutOps = %d, want 2", in.MutatingOps())
	}
}

// TestParseSpecRejectsBadCrashAt: zero and negative crash points are
// configuration errors, not no-ops.
func TestParseSpecRejectsBadCrashAt(t *testing.T) {
	for _, s := range []string{"crashat=0", "crashat=-1", "crashat=x"} {
		if _, err := fault.ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// TestParseSpecRejectsBadBrownout: a brownout needs VOL:FACTOR with a
// factor strictly above 1 (1 would be a no-op pretending to degrade).
func TestParseSpecRejectsBadBrownout(t *testing.T) {
	for _, s := range []string{"brownout=0", "brownout=x:8", "brownout=0:1", "brownout=0:0.5", "brownout=0:x"} {
		if _, err := fault.ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// TestBatchedAppendInjectable: the regression test for the wrapper
// hiding BatchAppender — a batched append through the fault wrapper must
// face per-piece injection with defined prefix semantics, not bypass the
// injector entirely.
func TestBatchedAppendInjectable(t *testing.T) {
	mk := func(spec fault.Spec, name string) (plfs.File, *fault.Injector) {
		in := fault.New(spec)
		b := in.Wrap(osfs.New(), 0, nil)
		f, err := b.Create(filepath.Join(t.TempDir(), name))
		if err != nil {
			t.Fatal(err)
		}
		return f, in
	}
	batch := payload.List{payload.Synthetic(1, 0, 100), payload.Synthetic(1, 100, 100)}

	// append=1: the first piece's die always fires — a clean transient,
	// nothing landed, retry may reissue.
	f, in := mk(fault.Spec{Seed: 1, P: map[fault.Op]float64{fault.OpAppend: 1}}, "x")
	ba, ok := f.(plfs.BatchAppender)
	if !ok {
		t.Fatal("wrapped file does not forward BatchAppender")
	}
	_, err := ba.Appendv(batch)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Transient {
		t.Fatalf("batched append error = %v, want transient fault", err)
	}
	if got := f.Size(); got != 0 {
		t.Errorf("failed-first-piece batch landed %d bytes, want 0", got)
	}
	if in.Injected()[fault.OpAppend] == 0 {
		t.Error("injector did not count the batched append fault")
	}
	f.Close()

	// torn=1: the first piece tears — half of it lands, permanent error.
	f, _ = mk(fault.Spec{Seed: 1, Torn: 1}, "y")
	_, err = f.(plfs.BatchAppender).Appendv(batch)
	if !errors.As(err, &fe) || fe.Kind != fault.Torn {
		t.Fatalf("torn batched append error = %v, want torn fault", err)
	}
	if got := f.Size(); got != 50 {
		t.Errorf("torn batch landed %d bytes, want 50 (half of piece 0)", got)
	}
	f.Close()

	// append=0.5 over many seeds: every outcome must be one of the three
	// defined states (nothing / piece 0 exactly / both), a mid-batch
	// failure must occur at least once, and it must report TornWrite so
	// in-place retries know a prefix landed.
	sawMid := false
	for seed := int64(1); seed <= 64; seed++ {
		f, _ := mk(fault.Spec{Seed: seed, P: map[fault.Op]float64{fault.OpAppend: 0.5}}, "z")
		_, err := f.(plfs.BatchAppender).Appendv(batch)
		got := f.Size()
		switch {
		case err == nil && got == 200:
		case err != nil && got == 0:
		case err != nil && got == 100:
			sawMid = true
			var tw interface{ TornWrite() bool }
			if !errors.As(err, &tw) || !tw.TornWrite() {
				t.Fatalf("seed %d: mid-batch failure does not report TornWrite: %v", seed, err)
			}
		default:
			t.Fatalf("seed %d: undefined batch state: size=%d err=%v", seed, got, err)
		}
		f.Close()
	}
	if !sawMid {
		t.Error("no mid-batch failure in 64 seeds; per-piece dice not rolling")
	}
}

// TestVectoredForwarding: wrapped files forward VectoredIO, per-extent
// dice included.
func TestVectoredForwarding(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Spec{Seed: 1})
	b := in.Wrap(osfs.New(), 0, nil)
	f, err := b.Create(filepath.Join(dir, "v"))
	if err != nil {
		t.Fatal(err)
	}
	vio, ok := f.(plfs.VectoredIO)
	if !ok {
		t.Fatal("wrapped file does not forward VectoredIO")
	}
	segs := []extent.Ext{{Off: 0, Len: 64}, {Off: 128, Len: 64}}
	data := payload.List{payload.Synthetic(1, 0, 64), payload.Synthetic(1, 64, 64)}
	if err := vio.WritevAt(segs, data); err != nil {
		t.Fatalf("WritevAt: %v", err)
	}
	got, err := vio.ReadvAt(segs)
	if err != nil {
		t.Fatalf("ReadvAt: %v", err)
	}
	if !payload.ContentEqual(got, data) {
		t.Error("vectored round trip mismatch through the fault wrapper")
	}
	f.Close()

	// read=1: the vectored read is injectable.
	in2 := fault.New(fault.Spec{Seed: 1, P: map[fault.Op]float64{fault.OpRead: 1}})
	f2, err := in2.Wrap(osfs.New(), 0, nil).OpenRead(filepath.Join(dir, "v"))
	if err == nil { // OpOpen untouched by read probability
		_, rerr := f2.(plfs.VectoredIO).ReadvAt(segs)
		var fe *fault.Error
		if !errors.As(rerr, &fe) || fe.Kind != fault.Transient {
			t.Fatalf("vectored read error = %v, want transient fault", rerr)
		}
		f2.Close()
	}
}

// TestBrownout: a browned-out volume charges multiplied latency through
// its sleeper, fails transiently at the elevated rate, and recovers
// exactly when the harness clears the brownout.
func TestBrownout(t *testing.T) {
	spec, err := fault.ParseSpec("seed=1,delay=1ms,brownout=1:8")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(spec)
	healthy := &recordSleeper{}
	browned := &recordSleeper{}
	b0 := in.Wrap(osfs.New(), 0, healthy)
	b1 := in.Wrap(osfs.New(), 1, browned)
	b0.Stat("/nonexistent")
	b1.Stat("/nonexistent")
	if healthy.total != time.Millisecond {
		t.Errorf("healthy vol charged %v, want 1ms", healthy.total)
	}
	if browned.total != 8*time.Millisecond {
		t.Errorf("browned-out vol charged %v, want 8ms", browned.total)
	}

	// No configured delay: the brownout floor applies (250us x factor).
	in2 := fault.New(fault.Spec{Seed: 1, Brownout: map[int]float64{0: 4}})
	s2 := &recordSleeper{}
	in2.Wrap(osfs.New(), 0, s2).Stat("/nonexistent")
	if s2.total != time.Millisecond {
		t.Errorf("floor brownout charged %v, want 1ms (250us x 4)", s2.total)
	}

	// Elevated transient rate: stats on the browned-out volume fail
	// sometimes; the healthy volume injects nothing.
	in3 := fault.New(fault.Spec{Seed: 1, Brownout: map[int]float64{1: 8}})
	h3 := in3.Wrap(osfs.New(), 0, &recordSleeper{})
	d3 := in3.Wrap(osfs.New(), 1, &recordSleeper{})
	dir := t.TempDir()
	if f, err := osfs.New().Create(filepath.Join(dir, "x")); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	fails := 0
	for i := 0; i < 400; i++ {
		if _, err := h3.Stat(filepath.Join(dir, "x")); err != nil {
			t.Fatalf("healthy vol injected: %v", err)
		}
		var fe *fault.Error
		if _, err := d3.Stat(filepath.Join(dir, "x")); errors.As(err, &fe) {
			fails++
		}
	}
	if fails == 0 {
		t.Error("browned-out volume injected no transients in 400 ops")
	}

	// Dynamic control: clearing the brownout restores healthy behavior.
	in3.ClearBrownout(1)
	s4 := &recordSleeper{}
	d4 := in3.Wrap(osfs.New(), 1, s4)
	for i := 0; i < 400; i++ {
		if _, err := d4.Stat(filepath.Join(dir, "x")); err != nil {
			t.Fatalf("cleared brownout still injecting: %v", err)
		}
	}
	if s4.total != 0 {
		t.Errorf("cleared brownout still charging latency: %v", s4.total)
	}
	in3.SetBrownout(1, 16)
	s5 := &recordSleeper{}
	in3.Wrap(osfs.New(), 1, s5).Stat(filepath.Join(dir, "x"))
	if s5.total != 4*time.Millisecond {
		t.Errorf("re-set brownout charged %v, want 4ms (250us x 16)", s5.total)
	}
}
