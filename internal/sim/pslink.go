package sim

import (
	"container/heap"
	"math"
)

// PSLink is a processor-sharing bandwidth link: at any instant, the n
// active flows each progress at capacity/n bytes per second.  It models
// shared network pipes (a storage network, a node's NIC) and aggregated
// disk groups, where concurrent transfers fairly split the hardware.
//
// The implementation uses the classic virtual-time trick: a monotone
// counter V advances at capacity/n bytes per second of real (virtual
// simulation) time, and a flow of S bytes admitted at V0 completes when
// V reaches V0+S.  Arrivals and departures cost O(log n).
type PSLink struct {
	e        *Engine
	capacity float64 // bytes per second
	name     string

	v     float64 // virtual bytes served per flow since start
	lastT Time
	flows psFlowHeap
	gen   uint64 // invalidates stale completion timers

	// doneFns holds completion callbacks for async flows; the list is tiny
	// in practice so a linear scan on completion is fine.
	doneFns []flowDone

	// Moved accumulates total bytes transferred, for utilization reports.
	Moved int64
}

type psFlow struct {
	finishV float64
	seq     uint64
	proc    *Proc
	idx     int
}

type psFlowHeap []*psFlow

func (h psFlowHeap) Len() int { return len(h) }
func (h psFlowHeap) Less(i, j int) bool {
	if h[i].finishV != h[j].finishV {
		return h[i].finishV < h[j].finishV
	}
	return h[i].seq < h[j].seq
}
func (h psFlowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *psFlowHeap) Push(x any) {
	f := x.(*psFlow)
	f.idx = len(*h)
	*h = append(*h, f)
}
func (h *psFlowHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// NewPSLink returns a fair-share link with the given capacity in bytes
// per second.
func NewPSLink(e *Engine, name string, bytesPerSec float64) *PSLink {
	if bytesPerSec <= 0 {
		panic("sim: PSLink capacity must be positive")
	}
	return &PSLink{e: e, capacity: bytesPerSec, name: name, lastT: e.Now()}
}

// Capacity returns the link capacity in bytes per second.
func (l *PSLink) Capacity() float64 { return l.capacity }

// Active returns the number of in-flight flows.
func (l *PSLink) Active() int { return len(l.flows) }

// advance brings the virtual counter up to the current time.
func (l *PSLink) advance() {
	now := l.e.Now()
	if n := len(l.flows); n > 0 && now > l.lastT {
		l.v += float64(now-l.lastT) / 1e9 * l.capacity / float64(n)
	}
	l.lastT = now
}

// Transfer moves bytes through the link, blocking p for the fair-share
// duration.  Zero or negative sizes complete immediately.
func (l *PSLink) Transfer(p *Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	l.Moved += bytes
	l.advance()
	l.e.seq++
	f := &psFlow{finishV: l.v + float64(bytes), seq: l.e.seq, proc: p}
	heap.Push(&l.flows, f)
	l.reschedule()
	p.park()
}

// TransferAsync starts a flow and invokes done (in engine context) when it
// completes, without blocking any process.  It lets one process drive
// several concurrent flows (e.g. a transfer that crosses both a network
// link and a disk group).
func (l *PSLink) TransferAsync(bytes int64, done func()) {
	if bytes <= 0 {
		l.e.After(0, done)
		return
	}
	l.Moved += bytes
	l.advance()
	l.e.seq++
	f := &psFlow{finishV: l.v + float64(bytes), seq: l.e.seq, proc: nil}
	heap.Push(&l.flows, f)
	l.doneFns = append(l.doneFns, flowDone{f, done})
	l.reschedule()
}

type flowDone struct {
	f  *psFlow
	fn func()
}

// reschedule (re)arms the single completion timer for the earliest
// finishing flow.
func (l *PSLink) reschedule() {
	l.gen++
	if len(l.flows) == 0 {
		return
	}
	gen := l.gen
	need := l.flows[0].finishV - l.v
	if need < 0 {
		need = 0
	}
	dt := need * float64(len(l.flows)) / l.capacity // seconds
	ns := Time(math.Ceil(dt * 1e9))
	l.e.At(l.e.Now()+ns+1, func() {
		if gen != l.gen {
			return
		}
		l.complete()
	})
}

// complete pops every flow whose virtual finish time has been reached.
func (l *PSLink) complete() {
	l.advance()
	const eps = 1e-6
	for len(l.flows) > 0 && l.flows[0].finishV <= l.v+eps {
		f := heap.Pop(&l.flows).(*psFlow)
		if f.proc != nil {
			f.proc.Wake()
		} else {
			for i, fd := range l.doneFns {
				if fd.f == f {
					l.doneFns = append(l.doneFns[:i], l.doneFns[i+1:]...)
					l.e.After(0, fd.fn)
					break
				}
			}
		}
	}
	l.reschedule()
}
