package sim

import "time"

// Resource is a first-come-first-served service center with a fixed number
// of parallel servers.  It models metadata servers, RPC handler pools, and
// other queueing stations.  All methods must be called from simulation
// context.
//
// The wait queue is a head-indexed slice so dequeue is O(1) even when
// tens of thousands of processes pile onto one hot resource.
type Resource struct {
	e     *Engine
	cap   int
	inUse int
	q     []*Proc
	head  int

	// Busy accumulates server-busy virtual time for utilization reports.
	Busy time.Duration
}

// NewResource returns a resource with the given number of parallel servers.
func NewResource(e *Engine, servers int) *Resource {
	if servers < 1 {
		servers = 1
	}
	return &Resource{e: e, cap: servers}
}

// Servers returns the number of parallel servers.
func (r *Resource) Servers() int { return r.cap }

// InUse returns the number of currently busy servers.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a server.
func (r *Resource) QueueLen() int { return len(r.q) - r.head }

// Acquire blocks p until a server is free and claims it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.q = append(r.q, p)
	p.park()
	// The releaser transferred its server slot to us; inUse is unchanged.
}

// Release frees a server, handing it to the longest-waiting process if any.
func (r *Resource) Release() {
	if r.head < len(r.q) {
		next := r.q[r.head]
		r.q[r.head] = nil
		r.head++
		if r.head == len(r.q) {
			r.q = r.q[:0]
			r.head = 0
		} else if r.head > 1024 && r.head*2 > len(r.q) {
			n := copy(r.q, r.q[r.head:])
			for i := n; i < len(r.q); i++ {
				r.q[i] = nil
			}
			r.q = r.q[:n]
			r.head = 0
		}
		next.Wake()
		return
	}
	r.inUse--
}

// Use acquires a server, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	r.Busy += d
	p.Sleep(d)
	r.Release()
}

// Mutex is a FIFO mutual-exclusion lock for simulated processes.
type Mutex struct {
	r *Resource
}

// NewMutex returns an unlocked mutex.
func NewMutex(e *Engine) *Mutex { return &Mutex{r: NewResource(e, 1)} }

// Lock blocks p until the mutex is held by p.
func (m *Mutex) Lock(p *Proc) { m.r.Acquire(p) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.r.Release() }

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.r.InUse() > 0 }

// Waiters reports how many processes are queued on the mutex.
func (m *Mutex) Waiters() int { return m.r.QueueLen() }

// Gate is a condition-style wait point: processes wait on it and are
// released in FIFO order by Open or OpenAll.
type Gate struct {
	q    []*Proc
	head int
}

// Wait parks p until the gate releases it.
func (g *Gate) Wait(p *Proc) {
	g.q = append(g.q, p)
	p.park()
}

// Open releases the longest-waiting process, reporting whether one waited.
func (g *Gate) Open() bool {
	if g.head >= len(g.q) {
		return false
	}
	next := g.q[g.head]
	g.q[g.head] = nil
	g.head++
	if g.head == len(g.q) {
		g.q, g.head = g.q[:0], 0
	}
	next.Wake()
	return true
}

// OpenAll releases every waiting process.
func (g *Gate) OpenAll() {
	for _, p := range g.q[g.head:] {
		p.Wake()
	}
	g.q, g.head = g.q[:0], 0
}

// Waiting reports the number of parked processes.
func (g *Gate) Waiting() int { return len(g.q) - g.head }

// WaitGroup counts down simulated completions; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	n    int
	gate Gate
}

// Add increments the completion count by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done decrements the count, releasing waiters at zero.
func (w *WaitGroup) Done() {
	w.n--
	if w.n <= 0 {
		w.gate.OpenAll()
	}
}

// Wait parks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n <= 0 {
		return
	}
	w.gate.Wait(p)
}
