package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(15 * time.Millisecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestEventOrderingIsFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var g Gate
	e.Spawn("stuck", func(p *Proc) { g.Wait(p) })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPanicPropagation(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("boom", func(p *Proc) { panic("kaboom") })
	if err := e.Run(); err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestCallbacksAndWake(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("w", func(p *Proc) {
		var g Gate
		e.After(7*time.Millisecond, func() { g.OpenAll() })
		g.Wait(p)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(7*time.Millisecond) {
		t.Fatalf("woke = %v, want 7ms", woke)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, f := range finish {
		want := Time((i + 1) * int(10*time.Millisecond))
		if f != want {
			t.Fatalf("finish[%d] = %v, want %v", i, f, want)
		}
	}
}

func TestResourceParallelServers(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	var last Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			last = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs, 2 servers, 10ms each -> 20ms makespan.
	if last != Time(20*time.Millisecond) {
		t.Fatalf("makespan = %v, want 20ms", last)
	}
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine(1)
	m := NewMutex(e)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			m.Lock(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			m.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order = %v, want FIFO", order)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	var wg WaitGroup
	wg.Add(3)
	var done Time
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != Time(3*time.Millisecond) {
		t.Fatalf("waiter woke at %v, want 3ms", done)
	}
}

func TestPSLinkSingleFlow(t *testing.T) {
	e := NewEngine(1)
	l := NewPSLink(e, "net", 1e9) // 1 GB/s
	var took Time
	e.Spawn("f", func(p *Proc) {
		start := p.Now()
		l.Transfer(p, 500e6)
		took = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := took.Seconds(), 0.5; math.Abs(got-want) > 1e-3 {
		t.Fatalf("500MB over 1GB/s took %.4fs, want %.4fs", got, want)
	}
}

func TestPSLinkFairShare(t *testing.T) {
	// Two equal flows sharing the link should each take twice as long.
	e := NewEngine(1)
	l := NewPSLink(e, "net", 1e9)
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("f%d", i), func(p *Proc) {
			l.Transfer(p, 500e6)
			done[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if got := d.Seconds(); math.Abs(got-1.0) > 1e-3 {
			t.Fatalf("flow %d finished at %.4fs, want 1.0s", i, got)
		}
	}
}

func TestPSLinkLateArrivalSlowsEarlyFlow(t *testing.T) {
	// Flow A (1GB) starts alone; flow B (250MB) joins at t=0.5s.
	// A serves 500MB alone, then shares: remaining 500MB of A and 250MB of
	// B at 500MB/s each.  B finishes at 0.5+0.5=1.0s; A at 0.5+0.5+0.25/1
	// ... worked out: after B departs at t=1.0s (having gotten 250MB), A has
	// 250MB left at full rate -> finishes t=1.25s.
	e := NewEngine(1)
	l := NewPSLink(e, "net", 1e9)
	var aDone, bDone Time
	e.Spawn("a", func(p *Proc) {
		l.Transfer(p, 1000e6)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		l.Transfer(p, 250e6)
		bDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := bDone.Seconds(); math.Abs(got-1.0) > 1e-3 {
		t.Fatalf("b finished at %.4fs, want 1.0s", got)
	}
	if got := aDone.Seconds(); math.Abs(got-1.25) > 1e-3 {
		t.Fatalf("a finished at %.4fs, want 1.25s", got)
	}
}

func TestPSLinkAsync(t *testing.T) {
	e := NewEngine(1)
	l1 := NewPSLink(e, "net", 1e9)
	l2 := NewPSLink(e, "disk", 0.5e9)
	var took Time
	e.Spawn("f", func(p *Proc) {
		// A pipelined transfer across two links costs max(t1, t2).
		var wg WaitGroup
		wg.Add(2)
		l1.TransferAsync(400e6, wg.Done)
		l2.TransferAsync(400e6, wg.Done)
		wg.Wait(p)
		took = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := took.Seconds(); math.Abs(got-0.8) > 1e-3 {
		t.Fatalf("pipelined transfer took %.4fs, want 0.8s", got)
	}
}

// TestPSLinkWorkConservation is a property test: for random flow sets, the
// link must finish all work no earlier than total/capacity and, when flows
// all start at t=0, exactly at total/capacity (the link is work-conserving
// while busy).
func TestPSLinkWorkConservation(t *testing.T) {
	f := func(sizes []uint32, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		e := NewEngine(seed)
		l := NewPSLink(e, "net", 1e8)
		var total int64
		var last Time
		for _, s := range sizes {
			sz := int64(s%10_000_000) + 1
			total += sz
			e.Spawn("f", func(p *Proc) {
				l.Transfer(p, sz)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		want := float64(total) / 1e8
		got := last.Seconds()
		return math.Abs(got-want) < want*1e-6+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxMatching(t *testing.T) {
	e := NewEngine(1)
	b := NewMailbox()
	var got []int
	e.Spawn("recv", func(p *Proc) {
		m := b.Get(p, 2, 7) // blocks: message not yet sent
		got = append(got, m.Tag)
		m = b.Get(p, 1, 5) // already queued by then
		got = append(got, m.Tag)
	})
	e.Spawn("send", func(p *Proc) {
		b.Put(Msg{Src: 1, Tag: 5})
		p.Sleep(time.Millisecond)
		b.Put(Msg{Src: 2, Tag: 7})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 5 {
		t.Fatalf("got = %v, want [7 5]", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		l := NewPSLink(e, "net", 1e9)
		r := NewResource(e, 2)
		res := make([]Time, 8)
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(e.Jitter(time.Millisecond, 0.5))
				r.Use(p, e.Jitter(2*time.Millisecond, 0.2))
				l.Transfer(p, int64(1e6*(i+1)))
				res[i] = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered traces")
	}
}

func TestJitterBounds(t *testing.T) {
	e := NewEngine(9)
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := e.Jitter(d, 0.1)
		if j < 90*time.Millisecond || j > 110*time.Millisecond {
			t.Fatalf("jitter %v out of ±10%% bounds", j)
		}
	}
	if e.Jitter(d, 0) != d {
		t.Fatal("zero-fraction jitter must be identity")
	}
}

// TestResourceLargeQueueFIFO pushes enough waiters through a single-server
// resource to exercise the head-indexed queue compaction, checking strict
// FIFO order throughout.
func TestResourceLargeQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	const n = 5000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Nanosecond) // deterministic arrival order
			r.Use(p, time.Microsecond)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("served %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; FIFO violated", i, v)
		}
	}
}

// TestGateInterleavedOpenWait exercises Open/Wait interleavings around the
// head-indexed queue.
func TestGateInterleavedOpenWait(t *testing.T) {
	e := NewEngine(1)
	var g Gate
	served := 0
	for i := 0; i < 100; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			g.Wait(p)
			served++
		})
	}
	e.Spawn("opener", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for g.Open() {
			p.Sleep(time.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 100 || g.Waiting() != 0 {
		t.Fatalf("served %d, waiting %d", served, g.Waiting())
	}
}
