// Package sim implements a deterministic discrete-event simulator used to
// model HPC clusters and parallel storage systems.
//
// The engine advances a virtual clock over a priority queue of events.
// Simulated processes are goroutines that run one at a time: the engine
// resumes exactly one process, waits for it to block (on a sleep, a
// resource, a link transfer, or a message), and only then pops the next
// event.  Because at most one simulated goroutine executes at any moment,
// model code needs no locking and every run is a pure function of its
// configuration and seed.
//
// The package provides the primitives the higher layers are built from:
//
//   - Engine/Proc: clock, event queue, process spawning and sleeping
//   - Resource:    a k-server FIFO service center (metadata servers, disks)
//   - PSLink:      a processor-sharing (fair-share) bandwidth link
//     (networks, storage pipes) that charges each concurrent
//     flow an equal share of the capacity
//   - Mutex/Gate:  serialization and condition-style waiting
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t (a span, not a point) to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

type event struct {
	t    Time
	seq  uint64
	proc *Proc  // if non-nil, resume this process
	fn   func() // otherwise run this callback in engine context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event     { return h[0] }
func (h *eventHeap) pushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) popEv() *event   { return heap.Pop(h).(*event) }

// Engine is a discrete-event simulation run.  The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yield   chan struct{}
	live    map[*Proc]struct{}
	cur     *Proc // the process currently executing, if any
	rng     *rand.Rand
	failure any
	stopped bool
}

// NewEngine returns an engine whose random service-time jitter is derived
// from seed.  Two engines with the same seed and the same model produce
// identical traces.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.  It must only be
// used from model code running inside the simulation.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Live returns the number of processes that have been spawned and not yet
// exited.  Periodic observers (tracers) use it to stop rescheduling
// themselves once the simulation's real work is done, so the event queue
// can drain.
func (e *Engine) Live() int { return len(e.live) }

// Jitter returns d perturbed by a uniform factor in [1-frac, 1+frac].
func (e *Engine) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*e.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

func (e *Engine) schedule(t Time, p *Proc, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{t: t, seq: e.seq, proc: p, fn: fn}
	e.queue.pushEv(ev)
	return ev
}

// At schedules fn to run in engine context at absolute time t.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run in engine context d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.schedule(e.now+Time(d), nil, fn) }

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time by the engine.
type Proc struct {
	e    *Engine
	name string

	resume chan struct{}
	parked bool // true while blocked with no pending resume event (debug only)
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs in.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn creates a simulated process running fn.  The process starts at the
// current virtual time, after already-queued events.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.schedule(e.now, p, nil)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if e.failure == nil {
					e.failure = fmt.Sprintf("proc %q panicked: %v", p.name, r)
				}
			}
			delete(e.live, p)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// park blocks the calling process until some event resumes it.  The caller
// must have arranged for a wake-up (a queued event or registration with a
// primitive that will schedule one).
func (p *Proc) park() {
	if p.e.cur != p {
		// A simulated operation (sleep, resource, transfer) was invoked on
		// a Proc that is not the one currently executing — almost always a
		// handle or client created by one process being used from another.
		panic(fmt.Sprintf("sim: blocking operation on proc %q from a different goroutine (current: %q)",
			p.name, p.e.curName()))
	}
	p.parked = true
	p.e.yield <- struct{}{}
	<-p.resume
	p.parked = false
}

func (e *Engine) curName() string {
	if e.cur == nil {
		return "<engine>"
	}
	return e.cur.name
}

// Block parks the process.  It is exported for primitives built outside
// this package; the waker must later call Proc.Wake.
func (p *Proc) Block() { p.park() }

// Wake schedules p to resume at the current virtual time.  It must be
// called from simulation context (another proc or an engine callback).
func (p *Proc) Wake() { p.e.schedule(p.e.now, p, nil) }

// Sleep suspends the process for d of virtual time.  Negative durations
// sleep zero.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now+Time(d), p, nil)
	p.park()
}

// Yield reschedules the process at the current time behind already-queued
// events, allowing other ready processes to run first.
func (p *Proc) Yield() {
	p.e.schedule(p.e.now, p, nil)
	p.park()
}

// Run processes events until the queue is empty, then reports whether the
// simulation completed cleanly.  It returns an error if a process panicked
// or if processes remain blocked with no pending events (a model deadlock).
func (e *Engine) Run() error {
	for e.queue.Len() > 0 {
		ev := e.queue.popEv()
		e.now = ev.t
		if ev.proc != nil {
			e.cur = ev.proc
			ev.proc.resume <- struct{}{}
			<-e.yield
			e.cur = nil
			if e.failure != nil {
				return fmt.Errorf("sim: %v", e.failure)
			}
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		if len(names) > 8 {
			names = append(names[:8], "...")
		}
		return fmt.Errorf("sim: deadlock: %d processes blocked forever (%v)", len(e.live), names)
	}
	return nil
}

// RunProcs spawns one process per function and runs the engine to
// completion.  It is a convenience for tests and small models.
func (e *Engine) RunProcs(fns ...func(*Proc)) error {
	for i, fn := range fns {
		e.Spawn(fmt.Sprintf("proc-%d", i), fn)
	}
	return e.Run()
}
