package sim

// Msg is a tagged message delivered through a Mailbox.  Payload values are
// shared by reference; the simulated transfer cost is modeled separately
// by the network layer, so sharing is safe and keeps memory bounded even
// when tens of thousands of ranks exchange large logical volumes.
type Msg struct {
	Src   int
	Tag   int
	Bytes int64
	Val   any
}

type mboxKey struct {
	src int
	tag int
}

// Mailbox is a per-receiver store of tagged messages with blocking receive.
// It implements MPI-style (source, tag) matching; each (source, tag) pair
// delivers in FIFO order.
type Mailbox struct {
	msgs    map[mboxKey][]Msg
	waiting map[mboxKey]*Proc
	slot    map[mboxKey]*Msg // message handed directly to a waiting receiver
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox {
	return &Mailbox{
		msgs:    make(map[mboxKey][]Msg),
		waiting: make(map[mboxKey]*Proc),
		slot:    make(map[mboxKey]*Msg),
	}
}

// Put delivers m, waking a matching blocked receiver if one exists.
func (b *Mailbox) Put(m Msg) {
	k := mboxKey{m.Src, m.Tag}
	if p, ok := b.waiting[k]; ok {
		delete(b.waiting, k)
		mc := m
		b.slot[k] = &mc
		p.Wake()
		return
	}
	b.msgs[k] = append(b.msgs[k], m)
}

// Get blocks p until a message from src with the given tag is available
// and returns it.  At most one process may wait on a given (src, tag) pair
// at a time.
func (b *Mailbox) Get(p *Proc, src, tag int) Msg {
	k := mboxKey{src, tag}
	if q := b.msgs[k]; len(q) > 0 {
		m := q[0]
		if len(q) == 1 {
			delete(b.msgs, k)
		} else {
			b.msgs[k] = q[1:]
		}
		return m
	}
	if _, dup := b.waiting[k]; dup {
		panic("sim: concurrent Mailbox.Get on same (src, tag)")
	}
	b.waiting[k] = p
	p.park()
	m := b.slot[k]
	delete(b.slot, k)
	return *m
}

// Pending reports the number of queued (undelivered) messages.
func (b *Mailbox) Pending() int {
	n := 0
	for _, q := range b.msgs {
		n += len(q)
	}
	return n
}
