// Package pnetcdf is a minimal Parallel-NetCDF-flavored array-file format
// over the MPI-IO (adio) layer.
//
// The paper's Pixie3D kernel "does I/O through the Parallel-NetCDF
// library".  Like real netCDF, files are built in define mode (dimensions
// then variables), EndDef freezes the layout and writes the header, and
// data access is per-variable hyperslab (vara) reads/writes.  Every
// opener reads the header; variables are packed row-major behind it in
// definition order.
package pnetcdf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"plfs/internal/adio"
	"plfs/internal/payload"
	"plfs/internal/slab"
)

// Magic identifies mini-netCDF files ("MCDF").
const Magic = 0x4D434446

// HeaderSize is the reserved header region.
const HeaderSize = 4096

// DimID names a dimension; VarID names a variable.
type (
	DimID int
	VarID int
)

type dim struct {
	name string
	size int64
}

type variable struct {
	name     string
	elemSize int64
	dims     []DimID
	offset   int64
}

// File is an open mini-netCDF file.
type File struct {
	f       adio.File
	comm    Comm
	dims    []dim
	vars    []variable
	defMode bool
	writing bool
}

// Comm is the slice of a communicator the formatting library needs.
type Comm interface {
	Rank() int
	Size() int
	Barrier()
}

// CreateFile starts a new file in define mode.
func CreateFile(c Comm, f adio.File) *File {
	return &File{f: f, comm: c, defMode: true, writing: true}
}

// DefDim defines a dimension (define mode only).
func (nc *File) DefDim(name string, size int64) (DimID, error) {
	if !nc.defMode {
		return 0, errors.New("pnetcdf: not in define mode")
	}
	if size <= 0 {
		return 0, fmt.Errorf("pnetcdf: dimension %q has size %d", name, size)
	}
	nc.dims = append(nc.dims, dim{name, size})
	return DimID(len(nc.dims) - 1), nil
}

// DefVar defines a variable over dimensions (define mode only).
func (nc *File) DefVar(name string, elemSize int64, dims []DimID) (VarID, error) {
	if !nc.defMode {
		return 0, errors.New("pnetcdf: not in define mode")
	}
	for _, d := range dims {
		if int(d) >= len(nc.dims) {
			return 0, fmt.Errorf("pnetcdf: variable %q references unknown dim %d", name, d)
		}
	}
	nc.vars = append(nc.vars, variable{name: name, elemSize: elemSize, dims: append([]DimID(nil), dims...)})
	return VarID(len(nc.vars) - 1), nil
}

// EndDef freezes the schema, computes the layout, and (collectively)
// writes the header.
func (nc *File) EndDef() error {
	if !nc.defMode {
		return errors.New("pnetcdf: already out of define mode")
	}
	nc.defMode = false
	nc.computeLayout()
	hdr := nc.encodeHeader()
	if len(hdr) > HeaderSize {
		return errors.New("pnetcdf: header overflow")
	}
	if nc.comm == nil || nc.comm.Rank() == 0 {
		if err := nc.f.WriteAt(0, payload.FromBytes(hdr)); err != nil {
			return err
		}
	}
	if nc.comm != nil {
		nc.comm.Barrier()
	}
	return nil
}

func (nc *File) computeLayout() {
	off := int64(HeaderSize)
	for i := range nc.vars {
		nc.vars[i].offset = off
		off += nc.varBytes(i)
	}
}

func (nc *File) varShape(i int) []int64 {
	v := nc.vars[i]
	shape := make([]int64, len(v.dims))
	for j, d := range v.dims {
		shape[j] = nc.dims[d].size
	}
	return shape
}

func (nc *File) varBytes(i int) int64 {
	return slab.Elements(nc.varShape(i)) * nc.vars[i].elemSize
}

// Open reads an existing file's header (every caller).
func Open(c Comm, f adio.File) (*File, error) {
	pl, err := f.ReadAt(0, HeaderSize)
	if err != nil {
		return nil, err
	}
	nc := &File{f: f, comm: c}
	if err := nc.decodeHeader(pl.Materialize()); err != nil {
		return nil, err
	}
	nc.computeLayout()
	return nc, nil
}

// InqVarID looks a variable up by name.
func (nc *File) InqVarID(name string) (VarID, error) {
	for i, v := range nc.vars {
		if v.name == name {
			return VarID(i), nil
		}
	}
	return 0, fmt.Errorf("pnetcdf: no variable %q", name)
}

// InqDim returns a dimension's name and size.
func (nc *File) InqDim(d DimID) (string, int64, error) {
	if int(d) >= len(nc.dims) {
		return "", 0, fmt.Errorf("pnetcdf: bad dim id %d", d)
	}
	return nc.dims[d].name, nc.dims[d].size, nil
}

// NumVars returns the variable count.
func (nc *File) NumVars() int { return len(nc.vars) }

// VarBytes returns the byte size of a variable's full extent.
func (nc *File) VarBytes(v VarID) int64 { return nc.varBytes(int(v)) }

// TotalBytes returns the data size of all variables.
func (nc *File) TotalBytes() int64 {
	var n int64
	for i := range nc.vars {
		n += nc.varBytes(i)
	}
	return n
}

// PutVara writes the hyperslab [start, start+count) of variable v.
func (nc *File) PutVara(v VarID, start, count []int64, p payload.Payload) error {
	if nc.defMode {
		return errors.New("pnetcdf: still in define mode")
	}
	if !nc.writing {
		return errors.New("pnetcdf: file opened read-only")
	}
	vr := nc.vars[v]
	if want := slab.Elements(count) * vr.elemSize; p.Len() != want {
		return fmt.Errorf("pnetcdf: vara payload %d bytes, want %d", p.Len(), want)
	}
	var pos int64
	var werr error
	err := slab.Runs(nc.varShape(int(v)), start, count, func(off, elems int64) {
		if werr != nil {
			return
		}
		n := elems * vr.elemSize
		werr = nc.f.WriteAt(vr.offset+off*vr.elemSize, p.Slice(pos, n))
		pos += n
	})
	if err != nil {
		return err
	}
	return werr
}

// GetVara reads the hyperslab [start, start+count) of variable v.
func (nc *File) GetVara(v VarID, start, count []int64) (payload.List, error) {
	if nc.defMode {
		return nil, errors.New("pnetcdf: still in define mode")
	}
	vr := nc.vars[v]
	var out payload.List
	var rerr error
	err := slab.Runs(nc.varShape(int(v)), start, count, func(off, elems int64) {
		if rerr != nil {
			return
		}
		pl, err := nc.f.ReadAt(vr.offset+off*vr.elemSize, elems*vr.elemSize)
		if err != nil {
			rerr = err
			return
		}
		out = out.Concat(pl)
	})
	if err != nil {
		return nil, err
	}
	return out, rerr
}

func (nc *File) encodeHeader() []byte {
	var buf []byte
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	putStr := func(s string) {
		put32(uint32(len(s)))
		buf = append(buf, s...)
	}
	put32(Magic)
	put32(uint32(len(nc.dims)))
	for _, d := range nc.dims {
		putStr(d.name)
		put64(uint64(d.size))
	}
	put32(uint32(len(nc.vars)))
	for _, v := range nc.vars {
		putStr(v.name)
		put32(uint32(v.elemSize))
		put32(uint32(len(v.dims)))
		for _, d := range v.dims {
			put32(uint32(d))
		}
	}
	return buf
}

func (nc *File) decodeHeader(data []byte) error {
	bad := errors.New("pnetcdf: corrupt header")
	u32 := func() (uint32, bool) {
		if len(data) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(data) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v, true
	}
	str := func() (string, bool) {
		n, ok := u32()
		if !ok || int(n) > len(data) {
			return "", false
		}
		s := string(data[:n])
		data = data[n:]
		return s, true
	}
	magic, ok := u32()
	if !ok || magic != Magic {
		return fmt.Errorf("pnetcdf: bad magic %#x", magic)
	}
	nd, ok := u32()
	if !ok || nd > 4096 {
		return bad
	}
	for i := uint32(0); i < nd; i++ {
		name, ok1 := str()
		size, ok2 := u64()
		if !ok1 || !ok2 {
			return bad
		}
		nc.dims = append(nc.dims, dim{name, int64(size)})
	}
	nv, ok := u32()
	if !ok || nv > 4096 {
		return bad
	}
	for i := uint32(0); i < nv; i++ {
		name, ok1 := str()
		es, ok2 := u32()
		ndims, ok3 := u32()
		if !ok1 || !ok2 || !ok3 || ndims > 64 {
			return bad
		}
		dims := make([]DimID, ndims)
		for j := range dims {
			d, ok := u32()
			if !ok || int(d) >= len(nc.dims) {
				return bad
			}
			dims[j] = DimID(d)
		}
		nc.vars = append(nc.vars, variable{name: name, elemSize: int64(es), dims: dims})
	}
	return nil
}
