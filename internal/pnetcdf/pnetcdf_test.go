package pnetcdf_test

import (
	"sync"
	"testing"

	"plfs/internal/adio"
	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
	"plfs/internal/pnetcdf"
)

func runRanks(t *testing.T, n int, fn func(ctx plfs.Ctx, rank int)) {
	t.Helper()
	comms := localcomm.New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(plfs.Ctx{
				Vols: []plfs.Backend{osfs.New()}, Rank: i,
				Host: i / 2, HostLeader: i%2 == 0, Comm: comms[i],
			}, i)
		}(i)
	}
	wg.Wait()
}

func TestNetCDFDefineModeAndRoundtrip(t *testing.T) {
	mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
	const n = 4
	const nx, ny = 8, 12
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		drv := adio.PLFS{Mount: mount}
		f, err := drv.Open(ctx, "pixie.mcdf", adio.WriteCreate, adio.Hints{})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		nc := pnetcdf.CreateFile(ctx.Comm, f)
		dx, err := nc.DefDim("x", nx)
		if err != nil {
			t.Error(err)
		}
		dy, _ := nc.DefDim("y", ny)
		vb, err := nc.DefVar("B", 8, []pnetcdf.DimID{dx, dy})
		if err != nil {
			t.Error(err)
		}
		if _, err := nc.DefVar("rho", 8, []pnetcdf.DimID{dx, dy}); err != nil {
			t.Error(err)
		}
		if err := nc.EndDef(); err != nil {
			t.Errorf("enddef: %v", err)
			return
		}
		// Writes after EndDef only.
		rows := int64(nx / n)
		start := []int64{int64(rank) * rows, 0}
		count := []int64{rows, ny}
		bytes := rows * ny * 8
		if err := nc.PutVara(vb, start, count, payload.Synthetic(uint64(rank+1), 0, bytes)); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}

		rf, err := drv.Open(ctx, "pixie.mcdf", adio.ReadOnly, adio.Hints{})
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		defer rf.Close()
		nc2, err := pnetcdf.Open(ctx.Comm, rf)
		if err != nil {
			t.Errorf("nc open: %v", err)
			return
		}
		if nc2.NumVars() != 2 {
			t.Errorf("vars = %d", nc2.NumVars())
		}
		vb2, err := nc2.InqVarID("B")
		if err != nil {
			t.Error(err)
			return
		}
		peer := (rank + 3) % n
		got, err := nc2.GetVara(vb2, []int64{int64(peer) * rows, 0}, count)
		if err != nil {
			t.Error(err)
			return
		}
		if !payload.ContentEqual(got, payload.List{payload.Synthetic(uint64(peer+1), 0, bytes)}) {
			t.Errorf("rank %d read of peer %d slab mismatch", rank, peer)
		}
	})
}

func TestNetCDFDefineModeRules(t *testing.T) {
	dir := t.TempDir()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		f, _ := adio.UFS{}.Open(ctx, dir+"/r.mcdf", adio.WriteCreate, adio.Hints{})
		nc := pnetcdf.CreateFile(nil, f)
		d, _ := nc.DefDim("t", 4)
		v, _ := nc.DefVar("v", 4, []pnetcdf.DimID{d})
		if err := nc.PutVara(v, []int64{0}, []int64{1}, payload.Zeros(4)); err == nil {
			t.Error("write in define mode accepted")
		}
		if err := nc.EndDef(); err != nil {
			t.Fatal(err)
		}
		if err := nc.EndDef(); err == nil {
			t.Error("double EndDef accepted")
		}
		if _, err := nc.DefDim("late", 2); err == nil {
			t.Error("DefDim after EndDef accepted")
		}
		if _, err := nc.DefVar("late", 4, nil); err == nil {
			t.Error("DefVar after EndDef accepted")
		}
		if _, err := nc.InqVarID("nope"); err == nil {
			t.Error("unknown var lookup succeeded")
		}
		name, size, err := nc.InqDim(d)
		if err != nil || name != "t" || size != 4 {
			t.Errorf("InqDim = %q %d %v", name, size, err)
		}
		if err := nc.PutVara(v, []int64{0}, []int64{4}, payload.Synthetic(1, 0, 16)); err != nil {
			t.Error(err)
		}
		f.Close()
	})
}

func TestNetCDFVariableLayoutsDoNotOverlap(t *testing.T) {
	dir := t.TempDir()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		f, _ := adio.UFS{}.Open(ctx, dir+"/l.mcdf", adio.WriteCreate, adio.Hints{})
		nc := pnetcdf.CreateFile(nil, f)
		d, _ := nc.DefDim("n", 16)
		a, _ := nc.DefVar("a", 1, []pnetcdf.DimID{d})
		b, _ := nc.DefVar("b", 1, []pnetcdf.DimID{d})
		nc.EndDef()
		nc.PutVara(a, []int64{0}, []int64{16}, payload.Synthetic(1, 0, 16))
		nc.PutVara(b, []int64{0}, []int64{16}, payload.Synthetic(2, 0, 16))
		ga, _ := nc.GetVara(a, []int64{0}, []int64{16})
		gb, _ := nc.GetVara(b, []int64{0}, []int64{16})
		if !payload.ContentEqual(ga, payload.List{payload.Synthetic(1, 0, 16)}) {
			t.Error("variable a clobbered")
		}
		if !payload.ContentEqual(gb, payload.List{payload.Synthetic(2, 0, 16)}) {
			t.Error("variable b clobbered")
		}
		f.Close()
	})
}
