// Package comm defines the minimal collective-communication interface the
// PLFS middleware and the MPI-IO layer are written against.
//
// The paper's index-aggregation techniques are collective algorithms
// ("both of these solutions assume the use of the MPI-IO interface, which
// we leverage for coordination").  Abstracting the collectives lets the
// same PLFS code run in two worlds:
//
//   - internal/mpi implements Comm on the discrete-event simulator, where
//     collective costs are modeled from message counts and volumes;
//   - internal/localcomm implements Comm with real goroutines and channels,
//     so PLFS works as an actual library over a local filesystem.
//
// Payload values passed through collectives are shared by reference; the
// nbytes arguments tell cost models how much data logically moves.
package comm

// Comm is a communicator: a fixed group of participants with a dense rank
// numbering.  All methods are collective unless noted: every member of the
// communicator must call them in the same order.
type Comm interface {
	// Rank returns the caller's rank in [0, Size).
	Rank() int
	// Size returns the number of participants.
	Size() int
	// Barrier blocks until every participant has entered it.
	Barrier()
	// Bcast returns root's v on every rank.  nbytes is the logical size of
	// v for cost modeling.
	Bcast(root int, nbytes int64, v any) any
	// Gather collects each rank's v; the root receives a slice indexed by
	// rank, all other ranks receive nil.  nbytes is the per-rank size.
	Gather(root int, nbytes int64, v any) []any
	// Scatter distributes vs (significant at root, indexed by rank) so
	// that each rank returns vs[rank].  nbytesEach is the per-rank size.
	Scatter(root int, nbytesEach int64, vs []any) any
	// Allgather collects each rank's v onto every rank.
	Allgather(nbytes int64, v any) []any
	// Alltoall sends vs[i] to rank i and returns the values received,
	// indexed by source rank.  nbytes[i] is the size sent to rank i.
	Alltoall(nbytes []int64, vs []any) []any
	// Split partitions the communicator: ranks passing the same color form
	// a new communicator, ordered by (key, old rank).  Like MPI_Comm_split,
	// it is collective over the parent.
	Split(color, key int) Comm
}

// SplitGroups computes the deterministic rank assignment MPI_Comm_split
// semantics require: for each color, members ordered by (key, rank).
// Implementations share it so simulated and real communicators agree.
//
// colors and keys are indexed by parent rank.  The result maps each parent
// rank to (its group's member list in new-rank order).
func SplitGroups(colors, keys []int) map[int][]int {
	type member struct{ key, rank int }
	byColor := make(map[int][]member)
	for r := range colors {
		c := colors[r]
		byColor[c] = append(byColor[c], member{keys[r], r})
	}
	out := make(map[int][]int, len(colors))
	for _, ms := range byColor {
		// Insertion sort by (key, rank); groups are small.
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && (ms[j].key < ms[j-1].key ||
				(ms[j].key == ms[j-1].key && ms[j].rank < ms[j-1].rank)); j-- {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			}
		}
		ranks := make([]int, len(ms))
		for i, m := range ms {
			ranks[i] = m.rank
		}
		for _, r := range ranks {
			out[r] = ranks
		}
	}
	return out
}
