package vfs_test

import (
	"bytes"
	"testing"

	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
	"plfs/internal/vfs"
)

func newVFS(t *testing.T) (*vfs.VFS, *plfs.Mount, string) {
	t.Helper()
	plfsRoot := t.TempDir()
	directRoot := t.TempDir()
	m := plfs.NewMount([]string{plfsRoot}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
	v := vfs.New(plfs.Ctx{Vols: []plfs.Backend{osfs.New()}, Rank: 0, HostLeader: true})
	v.MountPLFS("/mnt/plfs", m)
	v.MountBackend("/mnt/direct", 0, directRoot)
	return v, m, directRoot
}

func TestPLFSPathWriteReadThroughVFS(t *testing.T) {
	v, _, _ := newVFS(t)
	fd, err := v.Open("/mnt/plfs/ckpt", vfs.OWronly|vfs.OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Write(fd, payload.FromBytes([]byte("hello "))); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(fd, payload.FromBytes([]byte("world"))); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	rd, err := v.Open("/mnt/plfs/ckpt", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close(rd)
	got, err := v.Read(rd, 100) // clipped at EOF
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Materialize()) != "hello world" {
		t.Fatalf("got %q", got.Materialize())
	}
}

func TestVFSPreadPwriteAndSeek(t *testing.T) {
	v, _, _ := newVFS(t)
	fd, _ := v.Open("/mnt/plfs/f", vfs.OWronly|vfs.OCreate)
	if err := v.Pwrite(fd, 10, payload.FromBytes([]byte("XY"))); err != nil {
		t.Fatal(err)
	}
	v.Close(fd)
	rd, _ := v.Open("/mnt/plfs/f", vfs.ORdonly)
	defer v.Close(rd)
	if pos, _ := v.Seek(rd, -2, 2); pos != 10 {
		t.Fatalf("seek-from-end pos = %d", pos)
	}
	got, _ := v.Read(rd, 10)
	if string(got.Materialize()) != "XY" {
		t.Fatalf("got %q", got.Materialize())
	}
	pl, _ := v.Pread(rd, 0, 12)
	want := append(make([]byte, 10), 'X', 'Y')
	if !bytes.Equal(pl.Materialize(), want) {
		t.Fatalf("pread got %v", pl.Materialize())
	}
}

func TestDirectMountPassthrough(t *testing.T) {
	v, _, _ := newVFS(t)
	fd, err := v.Open("/mnt/direct/plain.txt", vfs.OWronly|vfs.OCreate)
	if err != nil {
		t.Fatal(err)
	}
	v.Write(fd, payload.FromBytes([]byte("direct bytes")))
	v.Close(fd)
	fi, err := v.Stat("/mnt/direct/plain.txt")
	if err != nil || fi.Size != 12 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	rd, _ := v.Open("/mnt/direct/plain.txt", vfs.ORdonly)
	defer v.Close(rd)
	got, _ := v.Read(rd, 100)
	if string(got.Materialize()) != "direct bytes" {
		t.Fatalf("got %q", got.Materialize())
	}
}

func TestPLFSContainerLooksLikeFile(t *testing.T) {
	v, _, _ := newVFS(t)
	fd, _ := v.Open("/mnt/plfs/ck", vfs.OWronly|vfs.OCreate)
	v.Write(fd, payload.FromBytes(make([]byte, 4096)))
	v.Close(fd)
	fi, err := v.Stat("/mnt/plfs/ck")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Dir || fi.Size != 4096 {
		t.Fatalf("container stat = %+v", fi)
	}
	ents, err := v.Readdir("/mnt/plfs")
	if err != nil || len(ents) != 1 || ents[0].Dir {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
}

func TestVFSErrors(t *testing.T) {
	v, _, _ := newVFS(t)
	if _, err := v.Open("/nowhere/x", vfs.ORdonly); err == nil {
		t.Fatal("open outside mounts succeeded")
	}
	if _, err := v.Open("/mnt/plfs/missing", vfs.ORdonly); err == nil {
		t.Fatal("open of missing PLFS file succeeded")
	}
	if err := v.Close(99); err == nil {
		t.Fatal("close of bad fd succeeded")
	}
	fd, _ := v.Open("/mnt/plfs/w", vfs.OWronly|vfs.OCreate)
	if _, err := v.Pread(fd, 0, 1); err == nil {
		t.Fatal("read of write-only PLFS fd succeeded (read-write mode is unsupported)")
	}
	v.Close(fd)
	rd, _ := v.Open("/mnt/plfs/w", vfs.ORdonly)
	if err := v.Pwrite(rd, 0, payload.Zeros(1)); err == nil {
		t.Fatal("write on read fd succeeded")
	}
	v.Close(rd)
}

func TestVFSUnlinkAndMkdir(t *testing.T) {
	v, m, _ := newVFS(t)
	if err := v.Mkdir("/mnt/plfs/dir"); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/mnt/plfs/dir/f", vfs.OWronly|vfs.OCreate)
	if err != nil {
		t.Fatal(err)
	}
	v.Write(fd, payload.FromBytes([]byte("z")))
	v.Close(fd)
	if err := v.Unlink("/mnt/plfs/dir/f"); err != nil {
		t.Fatal(err)
	}
	ctx := plfs.Ctx{Vols: []plfs.Backend{osfs.New()}}
	if ok, _ := m.IsContainer(ctx, "dir/f"); ok {
		t.Fatal("container survived unlink")
	}
}

// TestVFSUsesOriginalAggregation: the FUSE path is serial, so even on a
// parallel-index-read mount, reads aggregate with the Original design.
func TestVFSUsesOriginalAggregation(t *testing.T) {
	v, m, _ := newVFS(t)
	fd, _ := v.Open("/mnt/plfs/s", vfs.OWronly|vfs.OCreate)
	v.Write(fd, payload.FromBytes([]byte("abc")))
	v.Close(fd)
	ctx := plfs.Ctx{Vols: []plfs.Backend{osfs.New()}}
	rd, err := m.OpenReader(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Stats.Mode != plfs.Original {
		t.Fatalf("serial reader mode = %v", rd.Stats.Mode)
	}
}

func TestVFSRename(t *testing.T) {
	v, _, _ := newVFS(t)
	fd, _ := v.Open("/mnt/plfs/a", vfs.OWronly|vfs.OCreate)
	v.Write(fd, payload.FromBytes([]byte("move me")))
	v.Close(fd)
	if err := v.Rename("/mnt/plfs/a", "/mnt/plfs/b"); err != nil {
		t.Fatal(err)
	}
	rd, err := v.Open("/mnt/plfs/b", vfs.ORdonly)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close(rd)
	got, _ := v.Read(rd, 100)
	if string(got.Materialize()) != "move me" {
		t.Fatalf("got %q", got.Materialize())
	}
	if err := v.Rename("/mnt/plfs/x", "/mnt/direct/y"); err == nil {
		t.Fatal("cross-mount rename succeeded")
	}
}
