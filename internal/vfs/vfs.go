// Package vfs is the FUSE-substitute interposition layer: a per-process
// POSIX-style mount table and file-descriptor API.
//
// The paper's most transparent PLFS interface is a FUSE mount ("users
// need only to place their files in the PLFS mount point").  This package
// plays that role in-process: paths under a PLFS mount are transparently
// routed through the middleware — with no communicator, exactly like
// FUSE, so reads use the Original uncoordinated aggregation — while other
// paths pass through to a backend directly.
package vfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
	"strings"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Open flags (a subset of POSIX).
const (
	ORdonly = 0
	OWronly = 1
	OCreate = 1 << 6
)

// Errors.
var (
	ErrBadFD       = errors.New("vfs: bad file descriptor")
	ErrUnsupported = errors.New("vfs: operation not supported")
	ErrNoMount     = errors.New("vfs: no filesystem mounted at path")
)

// VFS is one process's view of the mounted namespace.  It is not safe for
// concurrent use by multiple goroutines (like a process's fd table, each
// simulated process owns one).
type VFS struct {
	ctx    plfs.Ctx // communicator intentionally ignored (FUSE is serial)
	mounts []mountEntry
	fds    map[int]*fd
	next   int
}

type mountEntry struct {
	prefix string
	pl     *plfs.Mount // PLFS mount, or
	vol    int         // passthrough volume index...
	root   string      // ...rooted here
}

type fd struct {
	path    string
	w       *plfs.Writer
	r       *plfs.Reader
	bf      plfs.File // passthrough backend file
	pos     int64
	writing bool
}

// New creates a VFS for the process described by ctx.  Any communicator
// in ctx is ignored: the FUSE path is non-collective.
func New(ctx plfs.Ctx) *VFS {
	ctx.Comm = nil
	return &VFS{ctx: ctx, fds: map[int]*fd{}, next: 3}
}

// MountPLFS mounts a PLFS file system at prefix.
func (v *VFS) MountPLFS(prefix string, m *plfs.Mount) {
	v.addMount(mountEntry{prefix: cleanAbs(prefix), pl: m})
}

// MountBackend mounts backend volume vol's directory root at prefix
// (direct access, no transformation).
func (v *VFS) MountBackend(prefix string, vol int, root string) {
	v.addMount(mountEntry{prefix: cleanAbs(prefix), vol: vol, root: root})
}

func (v *VFS) addMount(e mountEntry) {
	v.mounts = append(v.mounts, e)
	// Longest prefix first.
	sort.Slice(v.mounts, func(i, j int) bool { return len(v.mounts[i].prefix) > len(v.mounts[j].prefix) })
}

func cleanAbs(p string) string { return path.Clean("/" + p) }

// resolve finds the mount owning p and the mount-relative path.
func (v *VFS) resolve(p string) (*mountEntry, string, error) {
	p = cleanAbs(p)
	for i := range v.mounts {
		m := &v.mounts[i]
		if p == m.prefix || strings.HasPrefix(p, m.prefix+"/") || m.prefix == "/" {
			rel := strings.TrimPrefix(strings.TrimPrefix(p, m.prefix), "/")
			return m, rel, nil
		}
	}
	return nil, "", ErrNoMount
}

// Open opens a file, returning a descriptor.  PLFS files cannot be opened
// read-write (the middleware's documented restriction).
func (v *VFS) Open(p string, flags int) (int, error) {
	m, rel, err := v.resolve(p)
	if err != nil {
		return -1, err
	}
	f := &fd{path: p, writing: flags&OWronly != 0}
	switch {
	case m.pl != nil && f.writing:
		if flags&OCreate == 0 {
			return -1, ErrUnsupported // PLFS appends via fresh droppings only
		}
		w, err := m.pl.Create(v.ctx, rel)
		if err != nil {
			return -1, err
		}
		f.w = w
	case m.pl != nil:
		r, err := m.pl.OpenReader(v.ctx, rel)
		if err != nil {
			return -1, err
		}
		f.r = r
	default:
		full := path.Join(m.root, rel)
		b := v.ctx.Vols[m.vol]
		var bf plfs.File
		if f.writing {
			if flags&OCreate != 0 {
				bf, err = b.Create(full)
				if errors.Is(err, iofs.ErrExist) {
					bf, err = b.OpenWrite(full)
				}
			} else {
				bf, err = b.OpenWrite(full)
			}
		} else {
			bf, err = b.OpenRead(full)
		}
		if err != nil {
			return -1, err
		}
		f.bf = bf
	}
	fdn := v.next
	v.next++
	v.fds[fdn] = f
	return fdn, nil
}

func (v *VFS) fd(n int) (*fd, error) {
	f, ok := v.fds[n]
	if !ok {
		return nil, ErrBadFD
	}
	return f, nil
}

// Pwrite writes p at the given offset.
func (v *VFS) Pwrite(fdn int, off int64, p payload.Payload) error {
	f, err := v.fd(fdn)
	if err != nil {
		return err
	}
	if !f.writing {
		return fmt.Errorf("vfs: %s: not open for write", f.path)
	}
	if f.w != nil {
		return f.w.Write(off, p)
	}
	return f.bf.WriteAt(off, p)
}

// Write appends at the file position.
func (v *VFS) Write(fdn int, p payload.Payload) error {
	f, err := v.fd(fdn)
	if err != nil {
		return err
	}
	if err := v.Pwrite(fdn, f.pos, p); err != nil {
		return err
	}
	f.pos += p.Len()
	return nil
}

// Pread reads n bytes at the given offset.
func (v *VFS) Pread(fdn int, off, n int64) (payload.List, error) {
	f, err := v.fd(fdn)
	if err != nil {
		return nil, err
	}
	switch {
	case f.r != nil:
		return f.r.ReadAt(off, n)
	case f.bf != nil && !f.writing:
		return f.bf.ReadAt(off, n)
	default:
		return nil, fmt.Errorf("vfs: %s: not open for read", f.path)
	}
}

// Read reads n bytes at the file position, advancing it.  Reads are
// clipped at end of file.
func (v *VFS) Read(fdn int, n int64) (payload.List, error) {
	f, err := v.fd(fdn)
	if err != nil {
		return nil, err
	}
	size := v.fdSize(f)
	if f.pos >= size {
		return nil, nil
	}
	if f.pos+n > size {
		n = size - f.pos
	}
	pl, err := v.Pread(fdn, f.pos, n)
	if err == nil {
		f.pos += pl.Len()
	}
	return pl, err
}

func (v *VFS) fdSize(f *fd) int64 {
	switch {
	case f.r != nil:
		return f.r.Size()
	case f.bf != nil:
		return f.bf.Size()
	default:
		return 0
	}
}

// Seek sets the file position (whence 0 = absolute, 1 = relative,
// 2 = from end).
func (v *VFS) Seek(fdn int, off int64, whence int) (int64, error) {
	f, err := v.fd(fdn)
	if err != nil {
		return 0, err
	}
	switch whence {
	case 0:
		f.pos = off
	case 1:
		f.pos += off
	case 2:
		f.pos = v.fdSize(f) + off
	default:
		return 0, ErrUnsupported
	}
	if f.pos < 0 {
		f.pos = 0
	}
	return f.pos, nil
}

// Close releases a descriptor.
func (v *VFS) Close(fdn int) error {
	f, err := v.fd(fdn)
	if err != nil {
		return err
	}
	delete(v.fds, fdn)
	switch {
	case f.w != nil:
		return f.w.Close()
	case f.r != nil:
		return f.r.Close()
	default:
		return f.bf.Close()
	}
}

// Stat returns file metadata; PLFS containers appear as logical files.
func (v *VFS) Stat(p string) (plfs.Info, error) {
	m, rel, err := v.resolve(p)
	if err != nil {
		return plfs.Info{}, err
	}
	if m.pl != nil {
		if ok, err := m.pl.IsContainer(v.ctx, rel); err != nil {
			return plfs.Info{}, err
		} else if ok {
			return m.pl.Stat(v.ctx, rel)
		}
		// A plain directory inside the PLFS mount.
		return v.ctx.Vols[0].Stat(path.Join(mountRoot(m), rel))
	}
	return v.ctx.Vols[m.vol].Stat(path.Join(m.root, rel))
}

// mountRoot returns a representative backing root for namespace queries
// on plain directories inside a PLFS mount.
func mountRoot(m *mountEntry) string { return m.pl.Root(0) }

// Readdir lists a directory.
func (v *VFS) Readdir(p string) ([]plfs.Info, error) {
	m, rel, err := v.resolve(p)
	if err != nil {
		return nil, err
	}
	if m.pl != nil {
		return m.pl.ReadDir(v.ctx, rel)
	}
	return v.ctx.Vols[m.vol].ReadDir(path.Join(m.root, rel))
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(p string) error {
	m, rel, err := v.resolve(p)
	if err != nil {
		return err
	}
	if m.pl != nil {
		return m.pl.Mkdir(v.ctx, rel)
	}
	return v.ctx.Vols[m.vol].Mkdir(path.Join(m.root, rel))
}

// Rename moves a file within one mount.
func (v *VFS) Rename(oldP, newP string) error {
	mo, oldRel, err := v.resolve(oldP)
	if err != nil {
		return err
	}
	mn, newRel, err := v.resolve(newP)
	if err != nil {
		return err
	}
	if mo != mn {
		return ErrUnsupported // cross-mount renames, like cross-device links
	}
	if mo.pl != nil {
		return mo.pl.Rename(v.ctx, oldRel, newRel)
	}
	return v.ctx.Vols[mo.vol].Rename(path.Join(mo.root, oldRel), path.Join(mo.root, newRel))
}

// Unlink removes a file (or a PLFS container, wholesale).
func (v *VFS) Unlink(p string) error {
	m, rel, err := v.resolve(p)
	if err != nil {
		return err
	}
	if m.pl != nil {
		return m.pl.Unlink(v.ctx, rel)
	}
	return v.ctx.Vols[m.vol].Remove(path.Join(m.root, rel))
}
