package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links: [text](target).  Images and
// reference-style links are out of scope — the repo docs use inline
// links only.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// sectionRef matches the "§N" shorthand the docs use for DESIGN.md's
// numbered sections ("DESIGN.md §16", "(§9)").  Paper sections are
// roman ("§IV.C") and deliberately unmatched.
var sectionRef = regexp.MustCompile(`§(\d+)`)

// pkgRef matches internal/... package and file references in prose and
// tables ("internal/objfs", "internal/plfs/backend.go").
var pkgRef = regexp.MustCompile(`internal/[a-zA-Z0-9_.-]+(?:/[a-zA-Z0-9_.-]+)*`)

// TestDocLinks verifies that every relative link in the top-level docs
// points at a file or directory that exists, so the cross-references
// between README, DESIGN, and EXPERIMENTS cannot silently rot.
func TestDocLinks(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			// Drop any #fragment; a bare fragment links within the file.
			path, _, _ := strings.Cut(target, "#")
			if path == "" {
				continue
			}
			if _, err := os.Stat(filepath.Clean(path)); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
			}
		}
	}
}

// TestDocSectionAnchors verifies that every "§N" reference in the docs
// resolves to a numbered "## N. " section that actually exists in
// DESIGN.md — renumbering a section without chasing its references is
// how anchors rot.
func TestDocSectionAnchors(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	sections := map[string]bool{}
	header := regexp.MustCompile(`(?m)^## (\d+)\. `)
	for _, m := range header.FindAllStringSubmatch(string(design), -1) {
		sections[m[1]] = true
	}
	if len(sections) < 16 {
		t.Fatalf("only %d numbered DESIGN.md sections found; header format changed?", len(sections))
	}
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range sectionRef.FindAllStringSubmatch(string(data), -1) {
			if !sections[m[1]] {
				t.Errorf("%s: reference to §%s, but DESIGN.md has no section %s", doc, m[1], m[1])
			}
		}
	}
}

// TestDocPackageRefs verifies that every internal/... package or file
// the docs name exists in the tree.
func TestDocPackageRefs(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, ref := range pkgRef.FindAllString(string(data), -1) {
			// A ref at the end of a sentence drags its period along;
			// trim trailing dots only when the literal path is absent.
			if _, err := os.Stat(ref); err == nil {
				continue
			}
			trimmed := strings.TrimRight(ref, ".")
			if _, err := os.Stat(trimmed); err != nil {
				t.Errorf("%s: reference to %q, which does not exist", doc, ref)
			}
		}
	}
}
