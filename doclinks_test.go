package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links: [text](target).  Images and
// reference-style links are out of scope — the repo docs use inline
// links only.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks verifies that every relative link in the top-level docs
// points at a file or directory that exists, so the cross-references
// between README, DESIGN, and EXPERIMENTS cannot silently rot.
func TestDocLinks(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			// Drop any #fragment; a bare fragment links within the file.
			path, _, _ := strings.Cut(target, "#")
			if path == "" {
				continue
			}
			if _, err := os.Stat(filepath.Clean(path)); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
			}
		}
	}
}
