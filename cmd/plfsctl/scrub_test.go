package main_test

// End-to-end exercise of the plfsctl integrity commands as a user runs
// them: build the binary, write a checksummed container through the
// library, and check the exit-code discipline — 0 for a clean container,
// 1 with the extent named after a bit flip, 2 on usage errors.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// buildPlfsctl compiles the binary once per test run.
func buildPlfsctl(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "plfsctl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeContainer creates a small checksummed N-1 container under root.
func writeContainer(t *testing.T, root, name string) {
	t.Helper()
	const n, blocks, bs = 2, 2, int64(256)
	m := plfs.NewMount([]string{root}, plfs.Options{IndexMode: plfs.Original, Checksum: true})
	comms := localcomm.New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := plfs.Ctx{
				Vols: []plfs.Backend{osfs.New()}, Rank: rank, Host: rank,
				HostLeader: true, Comm: comms[rank],
			}
			w, err := m.Create(ctx, name)
			if err != nil {
				t.Errorf("rank %d create: %v", rank, err)
				return
			}
			for k := 0; k < blocks; k++ {
				off := int64(k*n+rank) * bs
				if err := w.Write(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
					t.Errorf("rank %d write: %v", rank, err)
				}
			}
			if err := w.Close(); err != nil {
				t.Errorf("rank %d close: %v", rank, err)
			}
		}(i)
	}
	wg.Wait()
}

// runCtl executes the binary and returns combined output and exit code.
func runCtl(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	return "", -1
}

func TestScrubCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildPlfsctl(t)
	root := t.TempDir()
	writeContainer(t, root, "victim")

	// Clean container: exit 0, human-readable OK.
	out, code := runCtl(t, bin, "scrub", "victim", "-root", root)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("clean scrub: exit %d\n%s", code, out)
	}

	// Usage error (no -root): exit 2.
	if _, code := runCtl(t, bin, "scrub", "victim"); code != 2 {
		t.Fatalf("usage error: exit %d, want 2", code)
	}

	// Bit-flip one data byte: exit 1 and the finding names the extent.
	matches, err := filepath.Glob(filepath.Join(root, "victim", "hostdir.*", "dropping.data.*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no data droppings: %v", err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if err := os.WriteFile(matches[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCtl(t, bin, "scrub", "victim", "-root", root)
	if code != 1 {
		t.Fatalf("corrupt scrub: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "checksum-data") || !strings.Contains(out, "extent [") {
		t.Fatalf("corrupt scrub did not name the extent:\n%s", out)
	}

	// Same walk in JSON: machine-readable problems, still exit 1.
	out, code = runCtl(t, bin, "scrub", "victim", "-root", root, "-json")
	if code != 1 {
		t.Fatalf("json scrub: exit %d, want 1\n%s", code, out)
	}
	var rep struct {
		Problems []struct {
			Kind   string `json:"kind"`
			Extent string `json:"extent"`
		} `json:"problems"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("json output: %v\n%s", err, out)
	}
	found := false
	for _, p := range rep.Problems {
		if p.Kind == "checksum-data" && p.Extent != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("json report misses the checksum-data finding:\n%s", out)
	}

	// check and recover share the discipline: the flipped data byte is
	// invisible to check (structure intact), so it stays exit 0; a
	// missing container is an operational error, exit 2.
	if out, code := runCtl(t, bin, "check", "victim", "-root", root); code != 0 {
		t.Fatalf("check: exit %d\n%s", code, out)
	}
	if _, code := runCtl(t, bin, "scrub", "no-such-file", "-root", root); code != 2 {
		t.Fatalf("missing container: exit %d, want 2", code)
	}
}
