// Command plfsctl inspects real on-disk PLFS containers (created by the
// library over internal/osfs — e.g. by the examples).
//
// Usage:
//
//	plfsctl ls   <volume-root> [more roots...]        # list logical files
//	plfsctl stat <logical> -root <volume-root> ...    # logical size
//	plfsctl map  <logical> -root <volume-root> ...    # resolved offset map
//	plfsctl read <logical> -root ... -off N -len N    # dump logical bytes
//	plfsctl flatten <logical> -root ...               # persist a global index
//	plfsctl check <logical> -root ...                 # container integrity check
//	plfsctl recover <logical> -root ...               # rebuild lost index droppings
//	plfsctl scrub <logical> -root ...                 # full integrity walk (checksums)
//	plfsctl rm   <logical> -root <volume-root> ...    # remove a container
//	plfsctl top  <metrics.json>                       # summarise a -metrics dump
//
// check, recover, and scrub accept -json for machine-readable reports
// and use disciplined exit codes: 0 clean, 1 problems found, 2 usage or
// operational error.  top takes the JSON written by plfsrun/plfsbench
// -metrics ('-' = stdin) and renders timers by total time descending.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"plfs/internal/obs"
	"plfs/internal/osfs"
	"plfs/internal/plfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var roots multiFlag
	fs.Var(&roots, "root", "volume root directory (repeat for federated mounts)")
	off := fs.Int64("off", 0, "read offset")
	length := fs.Int64("len", 256, "read length")
	jsonOut := fs.Bool("json", false, "machine-readable JSON report (check/recover/scrub)")

	var logical string
	args := os.Args[2:]
	if cmd != "ls" && len(args) > 0 && args[0][0] != '-' {
		logical = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if cmd == "top" {
		// top reads a metrics JSON file, not a container: no -root needed.
		if logical == "" {
			fmt.Fprintln(os.Stderr, "plfsctl: top requires a metrics JSON file (from plfsrun/plfsbench -metrics)")
			os.Exit(2)
		}
		if err := doTop(logical); err != nil {
			fmt.Fprintln(os.Stderr, "plfsctl:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "ls" && len(roots) == 0 {
		roots = fs.Args()
	}
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "plfsctl: at least one -root required")
		os.Exit(2)
	}

	m := plfs.NewMount(roots, plfs.Options{})
	ctx := plfs.Ctx{Vols: backends(len(roots)), HostLeader: true}

	var err error
	switch cmd {
	case "ls":
		err = doLS(m, ctx)
	case "stat":
		err = doStat(m, ctx, logical)
	case "map":
		err = doMap(m, ctx, logical)
	case "read":
		err = doRead(m, ctx, logical, *off, *length)
	case "rm":
		err = m.Unlink(ctx, logical)
	case "flatten":
		err = m.Flatten(ctx, logical)
	case "check", "recover", "scrub":
		runReport(m, ctx, cmd, logical, *jsonOut)
		return
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsctl:", err)
		os.Exit(1)
	}
}

// runReport runs one of the integrity commands with disciplined exit
// codes: 0 clean, 1 problems found, 2 operational error.
func runReport(m *plfs.Mount, ctx plfs.Ctx, cmd, logical string, jsonOut bool) {
	var (
		rep interface{ OK() bool }
		err error
	)
	switch cmd {
	case "check":
		rep, err = m.Check(ctx, logical)
	case "recover":
		rep, err = m.Recover(ctx, logical)
	case "scrub":
		rep, err = m.Scrub(ctx, logical)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsctl:", err)
		os.Exit(2)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "plfsctl:", err)
			os.Exit(2)
		}
	} else {
		fmt.Println(rep)
	}
	if !rep.OK() {
		os.Exit(1)
	}
	os.Exit(0)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: plfsctl {ls|stat|map|read|flatten|check|recover|scrub|rm} [logical] -root DIR [-root DIR...] [-off N] [-len N] [-json]")
	fmt.Fprintln(os.Stderr, "       plfsctl top <metrics.json>   (JSON from plfsrun/plfsbench -metrics; '-' = stdin)")
	os.Exit(2)
}

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func backends(n int) []plfs.Backend {
	out := make([]plfs.Backend, n)
	for i := range out {
		out[i] = osfs.New()
	}
	return out
}

func doLS(m *plfs.Mount, ctx plfs.Ctx) error {
	ents, err := m.ReadDir(ctx, "/")
	if err != nil {
		return err
	}
	for _, e := range ents {
		kind := "file"
		if e.Dir {
			kind = "dir"
		}
		fmt.Printf("%-5s %s\n", kind, e.Name)
	}
	return nil
}

func doStat(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	fi, err := m.Stat(ctx, logical)
	if err != nil {
		return err
	}
	fmt.Printf("%s: logical size %d bytes\n", logical, fi.Size)
	return nil
}

func doMap(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	ix := r.Index()
	fmt.Printf("# %s: %d droppings, %d raw entries, %d resolved segments, %d runs, logical size %d\n",
		logical, len(ix.Droppings()), ix.RawEntries(), ix.Segments(), ix.Runs(), ix.Size())
	for _, p := range ix.Lookup(0, ix.Size()) {
		if p.Dropping < 0 {
			fmt.Printf("%12d +%-10d hole\n", p.Logical, p.Length)
			continue
		}
		fmt.Printf("%12d +%-10d rank %-6d phys %-12d %s\n",
			p.Logical, p.Length, p.Rank, p.PhysOff, ix.Droppings()[p.Dropping])
	}
	return nil
}

// doTop summarises a metrics dump (the JSON written by plfsrun or
// plfsbench -metrics): timers sorted by total time descending, then
// counters and gauges alphabetically.
func doTop(path string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return fmt.Errorf("parsing metrics JSON: %w", err)
	}

	if len(snap.Histograms) > 0 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			a, b := snap.Histograms[names[i]], snap.Histograms[names[j]]
			if a.SumSeconds != b.SumSeconds {
				return a.SumSeconds > b.SumSeconds
			}
			return names[i] < names[j]
		})
		fmt.Printf("%-32s %10s %12s %10s %10s %10s %10s\n",
			"TIMER", "COUNT", "TOTAL(s)", "P50(s)", "P95(s)", "P99(s)", "MAX(s)")
		for _, name := range names {
			h := snap.Histograms[name]
			fmt.Printf("%-32s %10d %12.6f %10.6f %10.6f %10.6f %10.6f\n",
				name, h.Count, h.SumSeconds, h.P50Seconds, h.P95Seconds, h.P99Seconds, h.MaxSeconds)
		}
	}
	if len(snap.Counters) > 0 {
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\n%-32s %14s\n", "COUNTER", "VALUE")
		for _, name := range names {
			fmt.Printf("%-32s %14d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		names := make([]string, 0, len(snap.Gauges))
		for name := range snap.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\n%-32s %14s\n", "GAUGE", "VALUE")
		for _, name := range names {
			fmt.Printf("%-32s %14.3f\n", name, snap.Gauges[name])
		}
	}
	if snap.SpansDropped > 0 {
		fmt.Printf("\n(%d spans dropped by the retention limit)\n", snap.SpansDropped)
	}
	return nil
}

func doRead(m *plfs.Mount, ctx plfs.Ctx, logical string, off, n int64) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	if off+n > r.Size() {
		n = r.Size() - off
	}
	pl, err := r.ReadAt(off, n)
	if err != nil {
		return err
	}
	os.Stdout.Write(pl.Materialize())
	return nil
}
