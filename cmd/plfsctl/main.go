// Command plfsctl inspects real on-disk PLFS containers (created by the
// library over internal/osfs — e.g. by the examples).
//
// Usage:
//
//	plfsctl ls   <volume-root> [more roots...]        # list logical files
//	plfsctl stat <logical> -root <volume-root> ...    # logical size
//	plfsctl map  <logical> -root <volume-root> ...    # resolved offset map
//	plfsctl read <logical> -root ... -off N -len N    # dump logical bytes
//	plfsctl flatten <logical> -root ...               # persist a global index
//	plfsctl check <logical> -root ...                 # container integrity check
//	plfsctl recover <logical> -root ...               # rebuild lost index droppings
//	plfsctl scrub <logical> -root ...                 # full integrity walk (checksums)
//	plfsctl scrub <logical> -root ... -repair         # walk and fix (replicas, footers, temps)
//	plfsctl rm   <logical> -root <volume-root> ...    # remove a container
//	plfsctl top  <metrics.json>                       # summarise a -metrics dump
//	plfsctl health <metrics.json>                     # volume breaker / self-healing view
//
// check, recover, and scrub accept -json for machine-readable reports
// and use disciplined exit codes: 0 clean, 1 problems found, 2 usage or
// operational error.  scrub -repair applies the fixes scrub describes —
// re-replicate under-replicated indexes, rebuild torn ones from recovery
// footers, sweep orphaned commit temps — through the repair daemon's
// container pass (pass -replicas to heal replica slots).  top takes the
// JSON written by plfsrun/plfsbench -metrics ('-' = stdin) and renders
// timers by total time descending; health renders the same dump's
// per-volume breaker table and hedge/repair counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"plfs/internal/obs"
	"plfs/internal/osfs"
	"plfs/internal/plfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var roots multiFlag
	fs.Var(&roots, "root", "volume root directory (repeat for federated mounts)")
	off := fs.Int64("off", 0, "read offset")
	length := fs.Int64("len", 256, "read length")
	jsonOut := fs.Bool("json", false, "machine-readable JSON report (check/recover/scrub)")
	repair := fs.Bool("repair", false, "scrub: apply fixes instead of report-only")
	replicaN := fs.Int("replicas", 0, "index replication factor the container was written with (scrub -repair heals replica slots)")

	var logical string
	args := os.Args[2:]
	if cmd != "ls" && len(args) > 0 && args[0][0] != '-' {
		logical = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if cmd == "top" || cmd == "health" {
		// top and health read a metrics JSON file, not a container: no
		// -root needed.
		if logical == "" {
			fmt.Fprintf(os.Stderr, "plfsctl: %s requires a metrics JSON file (from plfsrun/plfsbench -metrics)\n", cmd)
			os.Exit(2)
		}
		do := doTop
		if cmd == "health" {
			do = doHealth
		}
		if err := do(logical); err != nil {
			fmt.Fprintln(os.Stderr, "plfsctl:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "ls" && len(roots) == 0 {
		roots = fs.Args()
	}
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "plfsctl: at least one -root required")
		os.Exit(2)
	}

	m := plfs.NewMount(roots, plfs.Options{IndexReplicas: *replicaN})
	ctx := plfs.Ctx{Vols: backends(len(roots)), HostLeader: true}

	var err error
	switch cmd {
	case "ls":
		err = doLS(m, ctx)
	case "stat":
		err = doStat(m, ctx, logical)
	case "map":
		err = doMap(m, ctx, logical)
	case "read":
		err = doRead(m, ctx, logical, *off, *length)
	case "rm":
		err = m.Unlink(ctx, logical)
	case "flatten":
		err = m.Flatten(ctx, logical)
	case "check", "recover", "scrub":
		if cmd == "scrub" && *repair {
			cmd = "repair"
		}
		runReport(m, ctx, cmd, logical, *jsonOut)
		return
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsctl:", err)
		os.Exit(1)
	}
}

// runReport runs one of the integrity commands with disciplined exit
// codes: 0 clean, 1 problems found, 2 operational error.
func runReport(m *plfs.Mount, ctx plfs.Ctx, cmd, logical string, jsonOut bool) {
	var (
		rep interface{ OK() bool }
		err error
	)
	switch cmd {
	case "check":
		rep, err = m.Check(ctx, logical)
	case "recover":
		rep, err = m.Recover(ctx, logical)
	case "scrub":
		rep, err = m.Scrub(ctx, logical)
	case "repair":
		rep, err = m.RepairContainer(ctx, logical)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsctl:", err)
		os.Exit(2)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "plfsctl:", err)
			os.Exit(2)
		}
	} else {
		fmt.Println(rep)
	}
	if !rep.OK() {
		os.Exit(1)
	}
	os.Exit(0)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: plfsctl {ls|stat|map|read|flatten|check|recover|scrub|rm} [logical] -root DIR [-root DIR...] [-off N] [-len N] [-json] [-repair] [-replicas N]")
	fmt.Fprintln(os.Stderr, "       plfsctl {top|health} <metrics.json>   (JSON from plfsrun/plfsbench -metrics; '-' = stdin)")
	os.Exit(2)
}

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func backends(n int) []plfs.Backend {
	out := make([]plfs.Backend, n)
	for i := range out {
		out[i] = osfs.New()
	}
	return out
}

func doLS(m *plfs.Mount, ctx plfs.Ctx) error {
	ents, err := m.ReadDir(ctx, "/")
	if err != nil {
		return err
	}
	for _, e := range ents {
		kind := "file"
		if e.Dir {
			kind = "dir"
		}
		fmt.Printf("%-5s %s\n", kind, e.Name)
	}
	return nil
}

func doStat(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	fi, err := m.Stat(ctx, logical)
	if err != nil {
		return err
	}
	fmt.Printf("%s: logical size %d bytes\n", logical, fi.Size)
	return nil
}

func doMap(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	ix := r.Index()
	fmt.Printf("# %s: %d droppings, %d raw entries, %d resolved segments, %d runs, logical size %d\n",
		logical, len(ix.Droppings()), ix.RawEntries(), ix.Segments(), ix.Runs(), ix.Size())
	for _, p := range ix.Lookup(0, ix.Size()) {
		if p.Dropping < 0 {
			fmt.Printf("%12d +%-10d hole\n", p.Logical, p.Length)
			continue
		}
		fmt.Printf("%12d +%-10d rank %-6d phys %-12d %s\n",
			p.Logical, p.Length, p.Rank, p.PhysOff, ix.Droppings()[p.Dropping])
	}
	return nil
}

// doTop summarises a metrics dump (the JSON written by plfsrun or
// plfsbench -metrics): timers sorted by total time descending, then
// counters and gauges alphabetically.
func doTop(path string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return fmt.Errorf("parsing metrics JSON: %w", err)
	}

	if len(snap.Histograms) > 0 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			a, b := snap.Histograms[names[i]], snap.Histograms[names[j]]
			if a.SumSeconds != b.SumSeconds {
				return a.SumSeconds > b.SumSeconds
			}
			return names[i] < names[j]
		})
		fmt.Printf("%-32s %10s %12s %10s %10s %10s %10s\n",
			"TIMER", "COUNT", "TOTAL(s)", "P50(s)", "P95(s)", "P99(s)", "MAX(s)")
		for _, name := range names {
			h := snap.Histograms[name]
			fmt.Printf("%-32s %10d %12.6f %10.6f %10.6f %10.6f %10.6f\n",
				name, h.Count, h.SumSeconds, h.P50Seconds, h.P95Seconds, h.P99Seconds, h.MaxSeconds)
		}
	}
	printVolumeLoad(snap)
	if len(snap.Counters) > 0 {
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\n%-32s %14s\n", "COUNTER", "VALUE")
		for _, name := range names {
			fmt.Printf("%-32s %14d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		names := make([]string, 0, len(snap.Gauges))
		for name := range snap.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\n%-32s %14s\n", "GAUGE", "VALUE")
		for _, name := range names {
			fmt.Printf("%-32s %14.3f\n", name, snap.Gauges[name])
		}
	}
	printTenants(snap)
	if snap.SpansDropped > 0 {
		fmt.Printf("\n(%d spans dropped by the retention limit)\n", snap.SpansDropped)
	}
	return nil
}

// printVolumeLoad renders the per-volume metadata load table from the
// pfs.vol<i>.mds_busy_seconds / mdsread_busy_seconds gauges: per-volume
// mutation and read-path busy time, each volume's share of the total,
// and the max/median skew — the operator view of the hot-volume
// imbalance the mount's Rebalance pass acts on.
func printVolumeLoad(snap obs.Snapshot) {
	type load struct{ mut, read float64 }
	vols := map[int]*load{}
	at := func(i int) *load {
		if vols[i] == nil {
			vols[i] = &load{}
		}
		return vols[i]
	}
	for name, v := range snap.Gauges {
		rest, ok := strings.CutPrefix(name, "pfs.vol")
		if !ok {
			continue
		}
		idStr, field, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		switch field {
		case "mds_busy_seconds":
			at(id).mut = v
		case "mdsread_busy_seconds":
			at(id).read = v
		}
	}
	if len(vols) == 0 {
		return
	}
	ids := make([]int, 0, len(vols))
	var total float64
	busy := make([]float64, 0, len(vols))
	for id, l := range vols {
		ids = append(ids, id)
		total += l.mut
		busy = append(busy, l.mut)
	}
	sort.Ints(ids)
	fmt.Printf("\n%-6s %14s %14s %8s\n", "VOLUME", "MDS_BUSY(s)", "MDSREAD_BUSY(s)", "SHARE")
	for _, id := range ids {
		l := vols[id]
		share := 0.0
		if total > 0 {
			share = 100 * l.mut / total
		}
		fmt.Printf("vol%-3d %14.6f %14.6f %7.1f%%\n", id, l.mut, l.read, share)
	}
	sort.Float64s(busy)
	maxL, med := busy[len(busy)-1], busy[len(busy)/2]
	switch {
	case len(busy) < 2 || maxL <= 0:
		fmt.Printf("mds load skew (max/median): n/a\n")
	case med <= 0:
		fmt.Printf("mds load skew (max/median): inf (median volume idle)\n")
	default:
		fmt.Printf("mds load skew (max/median): %.2f\n", maxL/med)
	}
}

// doHealth renders the self-healing view of a metrics dump: one row per
// volume from the plfs.health.<root>.* gauges (breaker state, rolling
// p99, transition and outcome counts), then the hedge/replica counters
// and the repair ledger.
func doHealth(path string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return fmt.Errorf("parsing metrics JSON: %w", err)
	}

	type vol struct{ fields map[string]float64 }
	vols := map[string]*vol{}
	const pfx = "plfs.health."
	for name, v := range snap.Gauges {
		rest, ok := strings.CutPrefix(name, pfx)
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			continue
		}
		root, field := rest[:i], rest[i+1:]
		r := vols[root]
		if r == nil {
			r = &vol{fields: map[string]float64{}}
			vols[root] = r
		}
		r.fields[field] = v
	}
	if len(vols) == 0 {
		fmt.Println("no plfs.health.* gauges in this dump (run with a Service mount and -metrics)")
	} else {
		roots := make([]string, 0, len(vols))
		for r := range vols {
			roots = append(roots, r)
		}
		sort.Strings(roots)
		fmt.Printf("%-16s %-10s %10s %8s %8s %8s %10s %10s\n",
			"VOLUME", "STATE", "P99(ms)", "OPENS", "PROBES", "PROBE_OK", "FAILURES", "SLOW_OPS")
		for _, root := range roots {
			f := vols[root].fields
			state := plfs.BreakerState(int(f["state"])).String()
			fmt.Printf("%-16s %-10s %10.3f %8.0f %8.0f %8.0f %10.0f %10.0f\n",
				root, state, f["p99_ns"]/1e6, f["opens"], f["probes"], f["probe_ok"],
				f["failures"], f["slow_ops"])
		}
	}

	ctr := func(name string) int64 { return snap.Counters[name] }
	fmt.Printf("\nhedging: hedged %d  hedge_wins %d  failover %d  replica_deferred %d  replica_write_errors %d\n",
		ctr("plfs.read.hedged"), ctr("plfs.read.hedge_wins"), ctr("plfs.replica.failover"),
		ctr("plfs.replica.deferred"), ctr("plfs.replica.write_errors"))
	g := func(name string) float64 { return snap.Gauges[name] }
	fmt.Printf("repair:  ticks %.0f  found %.0f = repaired %.0f + unrepairable %.0f  (deferred %.0f)\n",
		g("plfs.repair.ticks"), g("plfs.repair.found"), g("plfs.repair.repaired"),
		g("plfs.repair.unrepairable"), g("plfs.repair.deferred"))
	if sk := ctr("plfs.read.skipped_shards"); sk > 0 {
		fmt.Printf("degraded reads: %d skipped shards\n", sk)
	}
	return nil
}

// printTenants renders the mount-service view when the dump carries
// plfs.svc.* / plfs.econ.* series (plfsrun -tenants -metrics): one row
// per tenant joining the admission ledger counters with the cache-bytes
// attribution gauge, then the economy totals.
func printTenants(snap obs.Snapshot) {
	type row struct {
		admitted, completed, rejected, retries int64
		cacheBytes                             float64
	}
	tenants := map[string]*row{}
	get := func(t string) *row {
		r := tenants[t]
		if r == nil {
			r = &row{}
			tenants[t] = r
		}
		return r
	}
	const pfx = "plfs.svc.tenant."
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, pfx)
		if !ok {
			continue
		}
		t, field, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		switch field {
		case "admitted":
			get(t).admitted = v
		case "completed":
			get(t).completed = v
		case "rejected":
			get(t).rejected = v
		case "retries":
			get(t).retries = v
		}
	}
	for name, v := range snap.Gauges {
		rest, ok := strings.CutPrefix(name, pfx)
		if !ok {
			continue
		}
		t, field, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		// Gauges republished by Service.Publish carry the same ledger
		// values as the streamed counters, so either source fills the row.
		switch field {
		case "cache_bytes":
			get(t).cacheBytes = v
		case "admitted":
			get(t).admitted = int64(v)
		case "completed":
			get(t).completed = int64(v)
		case "rejected":
			get(t).rejected = int64(v)
		case "retries":
			get(t).retries = int64(v)
		}
	}
	if len(tenants) == 0 {
		return
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	fmt.Printf("\n%-16s %10s %10s %10s %10s %12s\n",
		"TENANT", "ADMITTED", "COMPLETED", "REJECTED", "RETRIES", "CACHE(KB)")
	for _, t := range names {
		r := tenants[t]
		fmt.Printf("%-16s %10d %10d %10d %10d %12.1f\n",
			t, r.admitted, r.completed, r.rejected, r.retries, r.cacheBytes/1024)
	}
	if budget, ok := snap.Gauges["plfs.econ.budget_bytes"]; ok {
		fmt.Printf("economy: used %.0f/%.0f KB, evicted %.0f entries (%.0f KB)\n",
			snap.Gauges["plfs.econ.used_bytes"]/1024, budget/1024,
			snap.Gauges["plfs.econ.evictions"], snap.Gauges["plfs.econ.evicted_bytes"]/1024)
	}
}

func doRead(m *plfs.Mount, ctx plfs.Ctx, logical string, off, n int64) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	if off+n > r.Size() {
		n = r.Size() - off
	}
	pl, err := r.ReadAt(off, n)
	if err != nil {
		return err
	}
	os.Stdout.Write(pl.Materialize())
	return nil
}
