// Command plfsctl inspects real on-disk PLFS containers (created by the
// library over internal/osfs — e.g. by the examples).
//
// Usage:
//
//	plfsctl ls   <volume-root> [more roots...]        # list logical files
//	plfsctl stat <logical> -root <volume-root> ...    # logical size
//	plfsctl map  <logical> -root <volume-root> ...    # resolved offset map
//	plfsctl read <logical> -root ... -off N -len N    # dump logical bytes
//	plfsctl flatten <logical> -root ...               # persist a global index
//	plfsctl check <logical> -root ...                 # container integrity check
//	plfsctl recover <logical> -root ...               # rebuild lost index droppings
//	plfsctl rm   <logical> -root <volume-root> ...    # remove a container
package main

import (
	"flag"
	"fmt"
	"os"

	"plfs/internal/osfs"
	"plfs/internal/plfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var roots multiFlag
	fs.Var(&roots, "root", "volume root directory (repeat for federated mounts)")
	off := fs.Int64("off", 0, "read offset")
	length := fs.Int64("len", 256, "read length")

	var logical string
	args := os.Args[2:]
	if cmd != "ls" && len(args) > 0 && args[0][0] != '-' {
		logical = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if cmd == "ls" && len(roots) == 0 {
		roots = fs.Args()
	}
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "plfsctl: at least one -root required")
		os.Exit(2)
	}

	m := plfs.NewMount(roots, plfs.Options{})
	ctx := plfs.Ctx{Vols: backends(len(roots)), HostLeader: true}

	var err error
	switch cmd {
	case "ls":
		err = doLS(m, ctx)
	case "stat":
		err = doStat(m, ctx, logical)
	case "map":
		err = doMap(m, ctx, logical)
	case "read":
		err = doRead(m, ctx, logical, *off, *length)
	case "rm":
		err = m.Unlink(ctx, logical)
	case "flatten":
		err = m.Flatten(ctx, logical)
	case "check":
		var rep plfs.CheckReport
		rep, err = m.Check(ctx, logical)
		if err == nil {
			fmt.Println(rep)
			if !rep.OK() {
				os.Exit(1)
			}
		}
	case "recover":
		var rep plfs.RecoverReport
		rep, err = m.Recover(ctx, logical)
		if err == nil {
			fmt.Println(rep)
			if !rep.OK() {
				os.Exit(1)
			}
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: plfsctl {ls|stat|map|read|flatten|check|recover|rm} [logical] -root DIR [-root DIR...] [-off N] [-len N]")
	os.Exit(2)
}

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func backends(n int) []plfs.Backend {
	out := make([]plfs.Backend, n)
	for i := range out {
		out[i] = osfs.New()
	}
	return out
}

func doLS(m *plfs.Mount, ctx plfs.Ctx) error {
	ents, err := m.ReadDir(ctx, "/")
	if err != nil {
		return err
	}
	for _, e := range ents {
		kind := "file"
		if e.Dir {
			kind = "dir"
		}
		fmt.Printf("%-5s %s\n", kind, e.Name)
	}
	return nil
}

func doStat(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	fi, err := m.Stat(ctx, logical)
	if err != nil {
		return err
	}
	fmt.Printf("%s: logical size %d bytes\n", logical, fi.Size)
	return nil
}

func doMap(m *plfs.Mount, ctx plfs.Ctx, logical string) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	ix := r.Index()
	fmt.Printf("# %s: %d droppings, %d raw entries, %d resolved segments, logical size %d\n",
		logical, len(ix.Droppings()), ix.RawEntries(), ix.Segments(), ix.Size())
	for _, p := range ix.Lookup(0, ix.Size()) {
		if p.Dropping < 0 {
			fmt.Printf("%12d +%-10d hole\n", p.Logical, p.Length)
			continue
		}
		fmt.Printf("%12d +%-10d rank %-6d phys %-12d %s\n",
			p.Logical, p.Length, p.Rank, p.PhysOff, ix.Droppings()[p.Dropping])
	}
	return nil
}

func doRead(m *plfs.Mount, ctx plfs.Ctx, logical string, off, n int64) error {
	r, err := m.OpenReader(ctx, logical)
	if err != nil {
		return err
	}
	defer r.Close()
	if off+n > r.Size() {
		n = r.Size() - off
	}
	pl, err := r.ReadAt(off, n)
	if err != nil {
		return err
	}
	os.Stdout.Write(pl.Materialize())
	return nil
}
