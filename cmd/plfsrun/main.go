// Command plfsrun executes a single I/O kernel on the simulated cluster
// and prints its phase times and effective bandwidths — the unit of every
// figure, exposed for ad-hoc exploration.
//
// Examples:
//
//	plfsrun -kernel ior -ranks 256 -plfs
//	plfsrun -kernel mpi-io-test -ranks 1024 -plfs -mode flatten -volumes 10
//	plfsrun -kernel lanl3 -ranks 512 -plfs -cb
//	plfsrun -kernel noncontig -access strided -io-method sieve -ranks 64
//	plfsrun -kernel create-storm -ranks 2048 -files 4 -profile cielo -volumes 10 -plfs
//	plfsrun -kernel meta-storm -ranks 4096 -bulk-create -rebalance
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"plfs/internal/adio"
	"plfs/internal/fault"
	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

func main() {
	var (
		kernel   = flag.String("kernel", "mpi-io-test", "workload: mpi-io-test | ior | madbench | pixie3d | aramco | lanl1 | lanl2 | lanl3 | noncontig | n-n | create-storm | meta-storm")
		ranks    = flag.Int("ranks", 64, "number of MPI ranks")
		bytesMB  = flag.Int64("mb", 50, "MB per rank (or total for strong-scaling kernels)")
		opKB     = flag.Int64("opkb", 50, "operation size in KiB (where applicable)")
		files    = flag.Int("files", 1, "files per rank (create-storm)")
		usePLFS  = flag.Bool("plfs", false, "route through PLFS (default: direct access)")
		mode     = flag.String("mode", "parallel", "PLFS index mode: original | flatten | parallel")
		volumes  = flag.Int("volumes", 1, "metadata volumes (federation)")
		profile  = flag.String("profile", "small", "cluster profile: small | cielo")
		cb       = flag.Bool("cb", false, "enable collective buffering")
		seed     = flag.Int64("seed", 1, "simulation seed")
		noRead   = flag.Bool("w", false, "write phase only")
		verify   = flag.Bool("verify", true, "verify read contents")
		stats    = flag.Bool("stats", false, "print the simulated file system's resource report")
		dropC    = flag.Bool("dropcaches", true, "invalidate caches between write and read phases")
		traceF   = flag.String("trace", "", "write a resource time-series CSV to this file")
		workers  = flag.Int("workers", 0, "decode worker pool (0 = GOMAXPROCS, 1 = serial)")
		faultS   = flag.String("fault", "", "fault injection spec, e.g. 'seed=7,all=0.05,torn=0.01,slow=0:2ms,lose=hostdir.3'")
		metricsF = flag.String("metrics", "", "write op metrics as JSON to this file ('-' = stdout) and print the phase breakdown")
		spansF   = flag.String("spans", "", "write phase spans as CSV to this file ('-' = stdout)")
		retryN   = flag.Int("retry", 1, "PLFS retry attempts for transient backend errors (1 = no retry)")
		partial  = flag.Bool("allow-partial", false, "skip unreadable index shards on read open (degraded results)")
		cksum    = flag.Bool("checksum", false, "checksummed framing: CRC32C trailers on index metadata and per-extent data checksums")
		compress = flag.Bool("index-compress", true, "run-compress index records at writer flush")
		ixCache  = flag.Bool("index-cache", true, "cache aggregated indexes across opens of an unchanged container")
		sieveKB  = flag.Int64("sieve-gap", 0, "sieving read coalescing: merge near-adjacent pieces up to this gap in KiB")
		access   = flag.String("access", "strided", "noncontig kernel file pattern: contig | strided | irregular")
		ioMethod = flag.String("io-method", "auto", "noncontiguous I/O method: auto | naive | sieve | list | twophase")
		tenants  = flag.Int("tenants", 0, "run the multi-tenant mount service: this many concurrent tenant jobs (ignores -kernel)")
		inflight = flag.Int("inflight", 4, "admission cap: concurrent operations the batch class admits (-tenants)")
		budgetMB = flag.Int64("budget-mb", 256, "service cache budget in MB shared across tenants (-tenants)")
		replicaN = flag.Int("replicas", 0, "index replication factor: commit index droppings and the global index to this many volumes (self-healing; <2 = off)")
		hedge    = flag.Bool("hedge", false, "hedged index reads: steer around open volume breakers and reissue slow primaries against replicas")
		brownS   = flag.String("brownout", "", "self-healing demo 'vol:factor[:from:to]': run the brownout harness instead of -kernel (4 volumes, per-step bandwidth series)")
		backend  = flag.String("backend", "posix", "simulated store: posix (cluster file system) | objfs (flat object store, commits via conditional PUT)")
		bulk     = flag.Bool("bulk-create", false, "batch collective creates through the MDS bulk-create RPC (rank 0 ships one batch per volume, Bcasts the verdicts)")
		rebal    = flag.Bool("rebalance", false, "meta-storm: rebalance hot-volume hostdirs between storm rounds (per-volume MDS busy-time feed)")
		rounds   = flag.Int("rounds", 3, "meta-storm rounds")
	)
	flag.Parse()

	switch *backend {
	case harness.BackendPosix, harness.BackendObjfs:
	default:
		fmt.Fprintf(os.Stderr, "plfsrun: unknown backend %q (want posix or objfs)\n", *backend)
		os.Exit(2)
	}

	cfg := pfs.SmallCluster()
	if *profile == "cielo" {
		cfg = pfs.Cielo()
	}
	cfg.Volumes = *volumes

	var m plfs.Mode
	switch *mode {
	case "original":
		m = plfs.Original
	case "flatten":
		m = plfs.IndexFlatten
	case "parallel":
		m = plfs.ParallelIndexRead
	default:
		fmt.Fprintf(os.Stderr, "plfsrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	bytes := *bytesMB << 20
	op := *opKB << 10
	if *brownS != "" {
		runBrownout(*brownS, *backend, *ranks, bytes, op, *seed, *hedge, *replicaN, *metricsF, *spansF)
		return
	}
	if *tenants > 0 {
		runTenants(cfg, *backend, *tenants, *ranks, *files, bytes, op, *seed, *inflight, *budgetMB, *metricsF, *spansF)
		return
	}
	if *kernel == "meta-storm" {
		runMetaStorm(cfg, *ranks, *rounds, *volumes, *seed, *bulk, *rebal)
		return
	}
	var k workloads.Kernel
	nn := false
	switch *kernel {
	case "mpi-io-test":
		k = workloads.MPIIOTest(bytes, op)
	case "ior":
		k = workloads.IOR(bytes, op)
	case "madbench":
		k = workloads.Madbench{Matrices: 8, MatrixBytes: bytes / 8}
	case "pixie3d":
		k = workloads.Pixie3D{BytesPerRank: bytes, Vars: 8}
	case "aramco":
		k = workloads.Aramco{TotalBytes: bytes * int64(*ranks) / 4}
	case "lanl1":
		k = workloads.LANL1(bytes)
	case "lanl2":
		k = workloads.LANL2(bytes)
	case "lanl3":
		k = workloads.LANL3(bytes*int64(*ranks), *ranks)
		*cb = true
	case "noncontig":
		acc, err := workloads.ParseAccess(*access)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(2)
		}
		blocks := int(bytes / op / 2)
		if blocks < 1 {
			blocks = 1
		}
		k = workloads.Noncontig{
			Access: acc, BlockSize: op, BlocksPerRank: blocks,
			Steps: 2, MemContig: true, Seed: *seed,
		}
	case "n-n":
		k = workloads.NNFiles{BytesPerRank: bytes, OpSize: op}
		nn = true
	case "create-storm":
		k = workloads.CreateStorm{FilesPerRank: *files}
		nn = true
	default:
		fmt.Fprintf(os.Stderr, "plfsrun: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	opt := plfs.Options{
		IndexMode: m, NumSubdirs: 32, DecodeWorkers: *workers,
		Retry:            plfs.RetryPolicy{Attempts: *retryN},
		AllowPartial:     *partial,
		Checksum:         *cksum,
		NoRunCompression: !*compress,
		NoIndexCache:     !*ixCache,
		SieveGap:         *sieveKB << 10,
		IndexReplicas:    *replicaN,
		HedgedReads:      *hedge,
		BulkCreate:       *bulk,
	}
	if *volumes > 1 {
		if nn {
			opt.SpreadContainers = true
			opt.NumSubdirs = 4
		} else {
			opt.SpreadSubdirs = true
		}
	}
	meth, err := adio.ParseIOMethod(*ioMethod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsrun:", err)
		os.Exit(2)
	}
	job := harness.Job{
		Seed: *seed, Ranks: *ranks, Cfg: cfg, Net: mpi.DefaultNet(),
		Opt:    opt,
		Hints:  adio.Hints{CollectiveBuffering: *cb, ProcsPerNode: cfg.ProcsPerNode, IOMethod: meth},
		Kernel: k, UsePLFS: *usePLFS, ReadBack: !*noRead, Verify: *verify,
		DropCaches: *dropC, Backend: *backend,
	}
	if *faultS != "" {
		spec, err := fault.ParseSpec(*faultS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(2)
		}
		job.Fault = &spec
	}
	var reg *obs.Registry
	if *metricsF != "" || *spansF != "" {
		reg = obs.New()
		job.Obs = reg
	}
	var traceFile *os.File
	if *traceF != "" {
		var err error
		traceFile, err = os.Create(*traceF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(1)
		}
		defer traceFile.Close()
		job.TraceEvery = 50 * time.Millisecond
		job.TraceTo = traceFile
	}
	res, rep, err := harness.RunWithReport(job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsrun:", err)
		os.Exit(1)
	}

	target := "direct"
	if *usePLFS {
		target = fmt.Sprintf("plfs (%s, %d volume(s))", m, *volumes)
	}
	fmt.Printf("%s x %d ranks on %s/%s via %s\n", k.Name(), *ranks, *profile, *backend, target)
	fmt.Printf("  write: open %8.3fs  io %8.3fs  close %8.3fs   %10.1f MB/s effective\n",
		res.WriteOpen.Seconds(), res.Write.Seconds(), res.WriteClose.Seconds(), res.WriteBW(*ranks)/1e6)
	if !*noRead && res.ReadTotal() > 0 {
		fmt.Printf("  read:  open %8.3fs  io %8.3fs  close %8.3fs   %10.1f MB/s effective\n",
			res.ReadOpen.Seconds(), res.Read.Seconds(), res.ReadClose.Seconds(), res.ReadBW(*ranks)/1e6)
	}
	fmt.Printf("  volume: %d MB per rank\n", res.BytesPerRank>>20)
	if *stats {
		fmt.Println("  " + rep.String())
	}
	if reg != nil {
		if err := writeMetrics(reg, *metricsF, *spansF); err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(1)
		}
	}
}

// runMetaStorm drives the metadata-at-scale harness: a collective
// create storm with bulk-create batching and between-round volume
// rebalancing togglable (plfsrun -kernel meta-storm).  With the default
// -volumes 1, the harness's 4-volume federation applies (skew needs a
// federation to be skewed across).
func runMetaStorm(cfg pfs.Config, ranks, rounds, volumes int, seed int64, bulk, rebalance bool) {
	job := harness.MetaStormJob{
		Seed: seed, Ranks: ranks, Rounds: rounds,
		BulkCreate: bulk, Rebalance: rebalance,
	}
	if volumes > 1 {
		job.Cfg = cfg
	}
	rep, err := harness.RunMetaStorm(job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsrun:", err)
		os.Exit(1)
	}
	fmt.Printf("meta-storm: %d ranks, %d rounds (bulk-create=%v rebalance=%v)\n",
		ranks, rounds, bulk, rebalance)
	fmt.Printf("  creates %d   open %.3fs   rate %.0f creates/s\n",
		rep.Creates, rep.OpenTime.Seconds(), rep.OpenRate)
	fmt.Printf("  mds load skew (max/median) %.2f   migrations %d   makespan %.3fs\n",
		rep.Skew, rep.Moves, rep.Makespan.Seconds())
}

// runBrownout drives the self-healing harness: one job writing and
// verifying a fresh container per step while one volume browns out for
// a window in the middle (plfsrun -brownout vol:factor[:from:to]).
// Prints the per-step delivered-bandwidth series, the window averages,
// the hedge counters (the CI smoke greps hedge_wins), the per-volume
// breaker table, and the repair ledger.
func runBrownout(spec, backend string, ranks int, bytes, op, seed int64, hedge bool, replicas int, metricsF, spansF string) {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 && len(parts) != 4 {
		fmt.Fprintf(os.Stderr, "plfsrun: -brownout wants 'vol:factor[:from:to]', got %q\n", spec)
		os.Exit(2)
	}
	nums := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plfsrun: -brownout %q: %v\n", spec, err)
			os.Exit(2)
		}
		nums[i] = v
	}
	job := harness.BrownoutJob{
		Seed: seed, Ranks: ranks, Backend: backend,
		Steps: 10, OpSize: op,
		BrownVol: int(nums[0]), BrownFactor: nums[1],
		BrownFrom: 2, BrownTo: 7,
		Repair: true,
		Opt: plfs.Options{
			IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
			SpreadContainers: true, SpreadSubdirs: true,
			HedgedReads: hedge, IndexReplicas: replicas,
		},
	}
	if len(nums) == 4 {
		job.BrownFrom, job.BrownTo = int(nums[2]), int(nums[3])
	}
	if job.BrownTo > job.Steps {
		job.Steps = job.BrownTo + 2
	}
	job.OpsPerRank = int(bytes / op / int64(job.Steps))
	if job.OpsPerRank < 1 {
		job.OpsPerRank = 1
	}
	var reg *obs.Registry
	if metricsF != "" || spansF != "" {
		reg = obs.New()
		job.Obs = reg
	}
	rep, err := harness.RunBrownout(job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsrun:", err)
		os.Exit(1)
	}
	fmt.Printf("brownout: vol %d x%g over steps [%d,%d) of %d, %d ranks (hedge=%v replicas=%d)\n",
		job.BrownVol, job.BrownFactor, job.BrownFrom, job.BrownTo, job.Steps, ranks, hedge, replicas)
	for _, s := range rep.Steps {
		mark := " "
		if s.Browned {
			mark = "*"
		}
		fmt.Printf("  step %2d %s %10.1f MB/s\n", s.Step, mark, s.BW/1e6)
	}
	fmt.Printf("  healthy %.1f MB/s   browned %.1f MB/s (%.0f%%)   after %.1f MB/s\n",
		rep.HealthyBW/1e6, rep.BrownBW/1e6, 100*rep.BrownBW/rep.HealthyBW, rep.AfterBW/1e6)
	fmt.Printf("self-heal: hedged %d hedge_wins %d failover %d\n", rep.Hedged, rep.HedgeWins, rep.Failover)
	for _, h := range rep.Health {
		fmt.Printf("  health %-12s state=%-9s opens=%d probes=%d probe_ok=%d failures=%d slow=%d\n",
			h.Root, h.State, h.Opens, h.Probes, h.ProbeOK, h.Failures, h.SlowOps)
	}
	r := rep.Repair
	fmt.Printf("  repair: ticks=%d found=%d repaired=%d unrepairable=%d deferred=%d\n",
		r.Ticks, r.Found, r.Repaired, r.Unrepairable, r.Deferred)
	if reg != nil {
		if err := writeMetrics(reg, metricsF, spansF); err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(1)
		}
	}
}

// runTenants drives the multi-tenant mount service: n identical tenant
// jobs of ranksPer ranks each, every job writing and verifying containers
// files, all sharing one cache budget and one "batch" admission class.
// Prints the per-tenant admission ledger and p99 open latency alongside
// the aggregate throughput (plfsrun -tenants).
func runTenants(cfg pfs.Config, backend string, n, ranksPer, containers int, bytes, op, seed int64, inflight int, budgetMB int64, metricsF, spansF string) {
	opsPerRank := int(bytes / op / int64(containers))
	if opsPerRank < 1 {
		opsPerRank = 1
	}
	ts := make([]harness.SaturationTenant, n)
	for i := range ts {
		ts[i] = harness.SaturationTenant{
			Name: fmt.Sprintf("t%d", i), Class: "batch",
			Ranks: ranksPer, Containers: containers,
			OpsPerRank: opsPerRank, OpSize: op,
		}
	}
	var reg *obs.Registry
	if metricsF != "" || spansF != "" {
		reg = obs.New()
	}
	rep, err := harness.RunSaturation(harness.SaturationJob{
		Seed: seed, Cfg: cfg, Backend: backend,
		Svc: plfs.ServiceOptions{
			CacheBudgetBytes: budgetMB << 20,
			Classes:          []plfs.ClassConfig{{Name: "batch", MaxInFlight: inflight}},
		},
		Tenants: ts,
		Obs:     reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "plfsrun:", err)
		os.Exit(1)
	}
	fmt.Printf("mount service: %d tenants x %d ranks, %d container(s) each (batch cap %d in flight, cache %d MB)\n",
		n, ranksPer, containers, inflight, budgetMB)
	fmt.Printf("  makespan %.3fs   aggregate %.1f MB/s   worst-tenant p99 open %.3fs\n",
		rep.Makespan.Seconds(), rep.AggregateBW/1e6, rep.OpenP99.Seconds())
	var admitted, completed, rejected int64
	for _, t := range rep.Tenants {
		a := t.Admission
		admitted += a.Admitted
		completed += a.Completed
		rejected += a.Rejected
		fmt.Printf("  %-8s p99 open %7.3fs  opens %4d  admitted %5d  completed %5d  rejected %5d  retries %5d\n",
			t.Tenant.Name, t.OpenP99.Seconds(), t.Opens, a.Admitted, a.Completed, a.Rejected, a.Retries)
	}
	fmt.Printf("  admission: admitted %d = completed %d + rejected %d\n", admitted, completed, rejected)
	e := rep.Service.Economy
	fmt.Printf("  cache: used %d/%d KB, evicted %d entries (%d KB)\n",
		e.UsedBytes>>10, e.BudgetBytes>>10, e.Evictions, e.EvictedBytes>>10)
	if reg != nil {
		if err := writeMetrics(reg, metricsF, spansF); err != nil {
			fmt.Fprintln(os.Stderr, "plfsrun:", err)
			os.Exit(1)
		}
	}
}

// writeMetrics emits the registry's snapshot (JSON) and spans (CSV) to
// the requested destinations ("-" = stdout, "" = skip) and prints the
// phase breakdown whenever metrics were requested.
func writeMetrics(reg *obs.Registry, metricsF, spansF string) error {
	emit := func(dst string, write func(io.Writer) error) error {
		if dst == "" {
			return nil
		}
		if dst == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := emit(metricsF, reg.WriteJSON); err != nil {
		return err
	}
	if err := emit(spansF, reg.WriteSpansCSV); err != nil {
		return err
	}
	if metricsF != "" {
		fmt.Print(obs.RenderBreakdown(reg.Breakdown()))
	}
	return nil
}
