package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/adio"
	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenJob is the fixed workload behind the -metrics golden file:
// everything that feeds the registry runs on the simulator's virtual
// clock, so the snapshot must be bit-identical across runs and hosts.
// DecodeWorkers is pinned to 1 so decode scheduling cannot depend on
// GOMAXPROCS.
func goldenJob(reg *obs.Registry) harness.Job {
	return harness.Job{
		Seed: 1, Ranks: 4, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(),
		Opt: plfs.Options{
			IndexMode: plfs.ParallelIndexRead, NumSubdirs: 32, DecodeWorkers: 1,
			Retry: plfs.RetryPolicy{Attempts: 1},
		},
		Kernel:  workloads.IOR(2<<20, 1<<19),
		UsePLFS: true, ReadBack: true, Verify: true, DropCaches: true,
		Obs: reg,
	}
}

// goldenNoncontigJob drives the write-sieving path (-kernel noncontig
// -access strided -io-method sieve, direct driver): the snapshot pins
// the plfs.write.sieve_* amplification counters alongside the base set.
func goldenNoncontigJob(reg *obs.Registry) harness.Job {
	return harness.Job{
		Seed: 1, Ranks: 4, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(),
		Kernel: workloads.Noncontig{
			Access: workloads.AccessStrided, BlockSize: 4 << 10,
			BlocksPerRank: 8, Steps: 2, MemContig: true, Seed: 1,
		},
		Hints:   adio.Hints{IOMethod: adio.MethodSieve},
		UsePLFS: false, ReadBack: true, Verify: true, DropCaches: true,
		Obs: reg,
	}
}

// TestMetricsGolden locks down the -metrics JSON for a fixed job.  Any
// change to counter names, histogram bucketing, JSON field order, or
// the instrumented code paths shows up as a diff here; regenerate with
// `go test ./cmd/plfsrun -run TestMetricsGolden -update` and review it.
func TestMetricsGolden(t *testing.T) {
	checkGolden(t, goldenJob, filepath.Join("testdata", "metrics.golden.json"))
}

// TestMetricsGoldenNoncontig locks down the -metrics JSON for the
// noncontiguous sieve job, pinning the new counter names (sieve RMW,
// amplification bytes) the same way.
func TestMetricsGoldenNoncontig(t *testing.T) {
	checkGolden(t, goldenNoncontigJob, filepath.Join("testdata", "metrics.noncontig.golden.json"))
}

func checkGolden(t *testing.T, mk func(*obs.Registry) harness.Job, golden string) {
	t.Helper()
	reg := obs.New()
	if _, err := harness.Run(mk(reg)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics JSON drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
