package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenJob is the fixed workload behind the -metrics golden file:
// everything that feeds the registry runs on the simulator's virtual
// clock, so the snapshot must be bit-identical across runs and hosts.
// DecodeWorkers is pinned to 1 so decode scheduling cannot depend on
// GOMAXPROCS.
func goldenJob(reg *obs.Registry) harness.Job {
	return harness.Job{
		Seed: 1, Ranks: 4, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(),
		Opt: plfs.Options{
			IndexMode: plfs.ParallelIndexRead, NumSubdirs: 32, DecodeWorkers: 1,
			Retry: plfs.RetryPolicy{Attempts: 1},
		},
		Kernel:  workloads.IOR(2<<20, 1<<19),
		UsePLFS: true, ReadBack: true, Verify: true, DropCaches: true,
		Obs: reg,
	}
}

// TestMetricsGolden locks down the -metrics JSON for a fixed job.  Any
// change to counter names, histogram bucketing, JSON field order, or
// the instrumented code paths shows up as a diff here; regenerate with
// `go test ./cmd/plfsrun -run TestMetricsGolden -update` and review it.
func TestMetricsGolden(t *testing.T) {
	reg := obs.New()
	if _, err := harness.Run(goldenJob(reg)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics JSON drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
