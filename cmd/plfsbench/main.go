// Command plfsbench regenerates the paper's evaluation figures on the
// simulated cluster.
//
// Usage:
//
//	plfsbench -fig all                 # every figure, quick scale
//	plfsbench -fig fig4 -scale paper   # one figure at paper scale
//	plfsbench -list                    # show available figures
//
// Output is one aligned text table per figure panel (mean ± stddev over
// repetitions); -csv DIR additionally writes machine-readable series.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"plfs/internal/fault"
	"plfs/internal/harness"
	"plfs/internal/obs"
	"plfs/internal/plfs"
)

func main() {
	var (
		figID    = flag.String("fig", "all", "figure id to run (see -list), or 'all'")
		scale    = flag.String("scale", "quick", "experiment scale: quick | paper")
		reps     = flag.Int("reps", 0, "repetitions per point (0 = default)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files into")
		workers  = flag.Int("workers", 0, "decode worker pool per mount (0 = GOMAXPROCS, 1 = serial)")
		quiet    = flag.Bool("q", false, "suppress per-run progress lines")
		list     = flag.Bool("list", false, "list figures and exit")
		faultS   = flag.String("fault", "", "fault injection spec applied to every run, e.g. 'seed=7,all=0.01'")
		retryN   = flag.Int("retry", 1, "PLFS retry attempts for transient backend errors (1 = no retry)")
		metricsF = flag.String("metrics", "", "accumulate op metrics across every run and write them as JSON to this file ('-' = stdout)")
		backend  = flag.String("backend", "posix", "simulated store for every run: posix | objfs (ablation-backend compares both regardless)")
	)
	flag.Parse()

	if *list {
		for _, f := range harness.Figures() {
			fmt.Printf("%-18s %s\n", f.ID, f.Title)
		}
		return
	}

	switch *backend {
	case harness.BackendPosix, harness.BackendObjfs:
	default:
		fmt.Fprintf(os.Stderr, "plfsbench: unknown backend %q (want posix or objfs)\n", *backend)
		os.Exit(2)
	}
	opts := harness.Options{
		Reps: *reps, DecodeWorkers: *workers,
		Retry:   plfs.RetryPolicy{Attempts: *retryN},
		Backend: *backend,
	}
	if *faultS != "" {
		spec, err := fault.ParseSpec(*faultS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plfsbench:", err)
			os.Exit(2)
		}
		opts.Fault = &spec
	}
	switch *scale {
	case "quick":
		opts.Scale = harness.Quick
	case "paper":
		opts.Scale = harness.Paper
	default:
		fmt.Fprintf(os.Stderr, "plfsbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	var reg *obs.Registry
	if *metricsF != "" {
		// One registry across the whole suite: spans are not retained (a
		// figure sweep would produce millions), histograms and counters are.
		reg = obs.New()
		reg.SetSpanLimit(0)
		opts.Obs = reg
	}

	var figs []harness.Figure
	if *figID == "all" {
		figs = harness.Figures()
	} else {
		for _, id := range strings.Split(*figID, ",") {
			f, ok := harness.FindFigure(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "plfsbench: unknown figure %q (try -list)\n", id)
				os.Exit(2)
			}
			figs = append(figs, f)
		}
	}

	for _, f := range figs {
		start := time.Now()
		fmt.Printf("== %s: %s (scale=%s)\n", f.ID, f.Title, *scale)
		tabs, err := f.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plfsbench: %s failed: %v\n", f.ID, err)
			os.Exit(1)
		}
		for i, tab := range tabs {
			fmt.Println(tab.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "plfsbench:", err)
					os.Exit(1)
				}
				name := f.ID
				if len(tabs) > 1 {
					name = fmt.Sprintf("%s-%d", f.ID, i)
				}
				path := filepath.Join(*csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "plfsbench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("-- %s done in %.1fs\n\n", f.ID, time.Since(start).Seconds())
	}
	if reg != nil {
		out := os.Stdout
		if *metricsF != "-" {
			f, err := os.Create(*metricsF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "plfsbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := reg.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "plfsbench:", err)
			os.Exit(1)
		}
	}
}
